"""Maps plugin (Fig. 6's ``Map`` primitives).

When the value type carries an abelian group, ``groupOnMaps`` lifts it to
maps pointwise and map changes become ``GroupChange(groupOnMaps g, δ)``
where ``δ`` touches only affected keys.

``foldMap group_a group_b f`` requires the Fig. 5 precondition -- each
``f k`` must be a group homomorphism from ``group_a`` to ``group_b`` --
and in exchange has a self-maintainable derivative (fold the change map
only).  ``foldMapGen`` drops the precondition and with it the efficient
derivative: its generic derivative recomputes, exactly the trade-off the
paper describes ("its derivative is not self-maintainable, but it is more
generally applicable", Sec. 4.4).
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.changes.map import MapChangeStructure
from repro.changes.primitive import ReplaceChangeStructure
from repro.data.change_values import GroupChange, Replace, is_nil_change, oplus_value
from repro.data.group import map_group
from repro.data.pmap import PMap
from repro.lang.terms import Const, Term
from repro.lang.types import Schema, TChange, TGroup, TMap, TVar, fun_type
from repro.plugins.base import (
    COST_CHANGE,
    COST_CONSTANT,
    BaseTypeSpec,
    ConstantSpec,
    Plugin,
    Specialization,
)
from repro.semantics.denotation import apply_semantic
from repro.semantics.thunk import force

_PLUGIN: Optional[Plugin] = None


def plugin() -> Plugin:
    global _PLUGIN
    if _PLUGIN is not None:
        return _PLUGIN
    result = Plugin(name="maps")

    def map_change_structure(ty, registry):
        value_group = registry.group_for_type(ty.args[1])
        if value_group is not None:
            return MapChangeStructure(value_group)
        return ReplaceChangeStructure(name=f"Replace({ty!r})")

    def map_nil_literal(value, ty, registry):
        value_group = registry.group_for_type(ty.args[1])
        if value_group is not None:
            return GroupChange(map_group(value_group), PMap.empty())
        return Replace(value)

    def map_group_for(ty, registry):
        value_group = registry.group_for_type(ty.args[1])
        if value_group is None:
            return None
        return map_group(value_group)

    result.add_base_type(
        BaseTypeSpec(
            name="Map",
            type_arity=2,
            change_structure=map_change_structure,
            nil_literal=map_nil_literal,
            group_for=map_group_for,
        )
    )

    k = TVar("k")
    a = TVar("a")
    b = TVar("b")
    map_ka = TMap(k, a)

    result.add_constant(
        ConstantSpec(
            name="emptyMap",
            schema=Schema(("k", "a"), map_ka),
            arity=0,
            value=PMap.empty(),
        )
    )

    result.add_constant(
        ConstantSpec(
            name="groupOnMaps",
            schema=Schema(("k", "a"), fun_type(TGroup(a), TGroup(map_ka))),
            arity=1,
            impl=map_group,
        )
    )

    # -- singletonMap ---------------------------------------------------------

    def singleton_map_derivative_impl(
        key: Any, key_change: Any, value: Any, value_change: Any
    ) -> Any:
        key_change = force(key_change)
        value_change = force(value_change)
        if is_nil_change(key_change, key):
            if isinstance(value_change, GroupChange):
                return GroupChange(
                    map_group(value_change.group),
                    PMap.singleton(key, value_change.delta),
                )
            if isinstance(value_change, Replace):
                return Replace(PMap.singleton(key, value_change.value))
        new_key = oplus_value(key, key_change)
        new_value = oplus_value(force(value), value_change)
        return Replace(PMap.singleton(new_key, new_value))

    singleton_map_derivative = result.add_constant(ConstantSpec(
        name="singletonMap'",
        cost=COST_CONSTANT,
        schema=Schema(
            ("k", "a"),
            fun_type(k, TChange(k), a, TChange(a), TChange(map_ka)),
        ),
        arity=4,
        impl=singleton_map_derivative_impl,
        lazy_positions=(2,),
        # Audited: the lazy base value is forced only when the key change
        # (position 1) is non-nil (or on the exotic-change fallback), so
        # its escape is guarded on a statically-nil key change.
        escaping_positions=(2,),
        escape_guards={2: 1},
    ))
    result.add_constant(
        ConstantSpec(
            name="singletonMap",
            schema=Schema(("k", "a"), fun_type(k, a, map_ka)),
            arity=2,
            impl=PMap.singleton,
            derivative=singleton_map_derivative,
        )
    )

    # -- lookup -----------------------------------------------------------------

    result.add_constant(
        ConstantSpec(
            name="lookupWithDefault",
            schema=Schema(("k", "a"), fun_type(k, a, map_ka, a)),
            arity=3,
            impl=lambda key, default, mapping: mapping.get(key, default),
        )
    )

    # -- foldMap (homomorphism fold, Fig. 6) ----------------------------------------

    def fold_map_impl(group_a: Any, group_b: Any, fn: Any, mapping: Any) -> Any:
        fold = getattr(group_b, "fold", None)
        images = (
            apply_semantic(fn, key, value) for key, value in mapping.items()
        )
        if fold is not None:
            return fold(images)
        accumulator = group_b.zero
        for image in images:
            accumulator = group_b.merge(accumulator, image)
        return accumulator

    def fold_map_nil_impl(
        group_a: Any, group_b: Any, fn: Any, mapping: Any, mapping_change: Any
    ) -> Any:
        """Self-maintainable ``foldMap'`` under the Fig. 5 precondition
        (each ``f k`` is a homomorphism from ``group_a`` to ``group_b``):
        fold the change map and wrap the result as a ``group_b`` change."""
        mapping_change = force(mapping_change)
        if isinstance(mapping_change, GroupChange):
            delta = mapping_change.delta
            return GroupChange(group_b, fold_map_impl(group_a, group_b, fn, delta))
        if isinstance(mapping_change, Replace):
            return Replace(
                fold_map_impl(group_a, group_b, fn, mapping_change.value)
            )
        raise TypeError(f"not a map change: {mapping_change!r}")

    fold_map_nil = ConstantSpec(
        name="foldMap'_gf",
        cost=COST_CHANGE,
        schema=Schema(
            ("k", "a", "b"),
            fun_type(
                TGroup(a),
                TGroup(b),
                fun_type(k, a, b),
                map_ka,
                TChange(map_ka),
                TChange(b),
            ),
        ),
        arity=5,
        impl=fold_map_nil_impl,
        lazy_positions=(3,),
        # Audited: the base map is forced only on the Replace fallback.
        escaping_positions=(),
    )
    result.add_constant(fold_map_nil)

    def fold_map_specialized(
        arguments: Sequence[Term], derive: Callable[[Term], Term]
    ) -> Term:
        group_a_term, group_b_term, fn_term, map_term = arguments
        return Const(fold_map_nil)(
            group_a_term, group_b_term, fn_term, map_term, derive(map_term)
        )

    result.add_constant(
        ConstantSpec(
            name="foldMap",
            schema=Schema(
                ("k", "a", "b"),
                fun_type(TGroup(a), TGroup(b), fun_type(k, a, b), map_ka, b),
            ),
            arity=4,
            impl=fold_map_impl,
            specializations=[
                Specialization(
                    nil_positions=frozenset({0, 1, 2}),
                    builder=fold_map_specialized,
                    description=(
                        "groups and homomorphic f nil ⇒ self-maintainable"
                    ),
                )
            ],
        )
    )

    # -- foldMapGen (no precondition, no efficient derivative) ----------------------

    def fold_map_gen_impl(zero: Any, merge_fn: Any, fn: Any, mapping: Any) -> Any:
        accumulator = zero
        for key, value in mapping.items():
            accumulator = apply_semantic(
                merge_fn, accumulator, apply_semantic(fn, key, value)
            )
        return accumulator

    result.add_constant(
        ConstantSpec(
            name="foldMapGen",
            schema=Schema(
                ("k", "a", "b"),
                fun_type(
                    b, fun_type(b, b, b), fun_type(k, a, b), map_ka, b
                ),
            ),
            arity=4,
            impl=fold_map_gen_impl,
        )
    )

    _PLUGIN = result
    return result
