"""Integers plugin.

The base type ``Int`` with the change structure induced by the additive
group ``G+ = (Z, +, −, 0)`` (Sec. 2.1), arithmetic primitives with
efficient derivatives, comparison primitives (whose boolean results use
replacement changes), and the first-class group constant ``gplus``.

Derivative highlights:

* ``add' x dx y dy = dx + dy``  -- self-maintainable: never touches x, y;
* ``mul' x dx y dy = x·dy + y·dx + dx·dy``  -- efficient but needs bases;
* comparisons fall back to the generic trivial derivative (recompute and
  ``Replace``), as the paper's plugin does for forms with "few
  optimizations".
"""

from __future__ import annotations

from typing import Any, Optional

from repro.changes.group import INT_CHANGES
from repro.data.change_values import GroupChange, Replace, oplus_value
from repro.data.group import INT_ADD_GROUP
from repro.lang.types import Schema, TBool, TChange, TGroup, TInt, fun_type
from repro.plugins.base import BaseTypeSpec, COST_CONSTANT, ConstantSpec, Plugin
from repro.semantics.denotation import curry_host
from repro.semantics.thunk import force

_PLUGIN: Optional[Plugin] = None

_DINT = TChange(TInt)


def _is_int_delta(change: Any) -> bool:
    return isinstance(change, GroupChange) and change.group == INT_ADD_GROUP


def _linear_int_derivative(name: str, combine) -> ConstantSpec:
    """A derivative for a binary int primitive whose output delta depends
    only on the input deltas (self-maintainable when both changes are
    additive)."""

    def impl(x: Any, dx: Any, y: Any, dy: Any) -> Any:
        dx = force(dx)
        dy = force(dy)
        if _is_int_delta(dx) and _is_int_delta(dy):
            return GroupChange(INT_ADD_GROUP, combine(dx.delta, dy.delta))
        new_x = oplus_value(force(x), dx)
        new_y = oplus_value(force(y), dy)
        return Replace(_BINARY_IMPLS[name](new_x, new_y))

    return ConstantSpec(
        name=f"{name}'",
        schema=Schema.mono(
            fun_type(TInt, _DINT, TInt, _DINT, _DINT)
        ),
        arity=4,
        impl=impl,
        lazy_positions=(0, 2),
        # Audited: the lazy bases are forced only on the Replace-fallback
        # path (non-additive deltas), which the analysis does not model.
        escaping_positions=(),
        cost=COST_CONSTANT,
    )


_BINARY_IMPLS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
}


def plugin() -> Plugin:
    global _PLUGIN
    if _PLUGIN is not None:
        return _PLUGIN
    result = Plugin(name="integers")

    result.add_base_type(
        BaseTypeSpec(
            name="Int",
            change_structure=lambda ty, registry: INT_CHANGES,
            nil_literal=lambda value, ty, registry: GroupChange(INT_ADD_GROUP, 0),
            group_for=lambda ty, registry: INT_ADD_GROUP,
        )
    )

    int_binop = Schema.mono(fun_type(TInt, TInt, TInt))
    int_cmp = Schema.mono(fun_type(TInt, TInt, TBool))

    add_d = result.add_constant(
        _linear_int_derivative("add", lambda dx, dy: dx + dy)
    )
    sub_d = result.add_constant(
        _linear_int_derivative("sub", lambda dx, dy: dx - dy)
    )

    result.add_constant(
        ConstantSpec(
            name="add",
            schema=int_binop,
            arity=2,
            impl=lambda a, b: a + b,
            derivative=add_d,
            semantic_derivative=lambda: curry_host(
                lambda x, dx, y, dy: dx + dy, 4
            ),
        )
    )
    result.add_constant(
        ConstantSpec(
            name="sub",
            schema=int_binop,
            arity=2,
            impl=lambda a, b: a - b,
            derivative=sub_d,
            semantic_derivative=lambda: curry_host(
                lambda x, dx, y, dy: dx - dy, 4
            ),
        )
    )

    def mul_derivative_impl(x: Any, dx: Any, y: Any, dy: Any) -> Any:
        dx = force(dx)
        dy = force(dy)
        if _is_int_delta(dx) and _is_int_delta(dy):
            x = force(x)
            y = force(y)
            return GroupChange(
                INT_ADD_GROUP, x * dy.delta + y * dx.delta + dx.delta * dy.delta
            )
        new_x = oplus_value(force(x), dx)
        new_y = oplus_value(force(y), dy)
        return Replace(new_x * new_y)

    mul_d = result.add_constant(ConstantSpec(
        name="mul'",
        cost=COST_CONSTANT,
        schema=Schema.mono(fun_type(TInt, _DINT, TInt, _DINT, _DINT)),
        arity=4,
        impl=mul_derivative_impl,
    ))
    result.add_constant(
        ConstantSpec(
            name="mul",
            schema=int_binop,
            arity=2,
            impl=lambda a, b: a * b,
            derivative=mul_d,
            semantic_derivative=lambda: curry_host(
                lambda x, dx, y, dy: x * dy + y * dx + dx * dy, 4
            ),
        )
    )

    def negate_derivative_impl(x: Any, dx: Any) -> Any:
        dx = force(dx)
        if _is_int_delta(dx):
            return GroupChange(INT_ADD_GROUP, -dx.delta)
        return Replace(-oplus_value(force(x), dx))

    negate_d = result.add_constant(ConstantSpec(
        name="negateInt'",
        cost=COST_CONSTANT,
        schema=Schema.mono(fun_type(TInt, _DINT, _DINT)),
        arity=2,
        impl=negate_derivative_impl,
        lazy_positions=(0,),
        # Audited: the base is forced only on the Replace fallback.
        escaping_positions=(),
    ))
    result.add_constant(
        ConstantSpec(
            name="negateInt",
            schema=Schema.mono(fun_type(TInt, TInt)),
            arity=1,
            impl=lambda a: -a,
            derivative=negate_d,
            semantic_derivative=lambda: curry_host(lambda x, dx: -dx, 2),
        )
    )

    # Comparisons: boolean outputs use replacement changes; the generic
    # trivial derivative (recompute + Replace) is exactly right.
    result.add_constant(
        ConstantSpec(
            name="eqInt", schema=int_cmp, arity=2, impl=lambda a, b: a == b
        )
    )
    result.add_constant(
        ConstantSpec(
            name="ltInt", schema=int_cmp, arity=2, impl=lambda a, b: a < b
        )
    )
    result.add_constant(
        ConstantSpec(
            name="leqInt", schema=int_cmp, arity=2, impl=lambda a, b: a <= b
        )
    )

    # G+ as a first-class value (Sec. 2.1 / Fig. 5's additiveGroupOnIntegers).
    result.add_constant(
        ConstantSpec(
            name="gplus",
            schema=Schema.mono(TGroup(TInt)),
            arity=0,
            value=INT_ADD_GROUP,
        )
    )

    _PLUGIN = result
    return result
