"""The plugin interface (Sec. 3.7).

A differentiation plugin must provide:

* base types, and for each base type its erased change structure
  (change type, runtime ⊕/⊖ behaviour, nil-change literals);
* primitives, and for each primitive ``c`` the term ``Derive(c)``.

The executable analogue of the *proof plugin* rides along: a semantic
change structure per base type (``BaseTypeSpec.change_structure``) and a
semantic derivative per constant (``ConstantSpec.semantic_derivative``),
with a universally-correct default -- the trivial derivative
``f' x dx = f (x ⊕ dx) ⊖ f x`` of Sec. 3, which is what inefficient
incrementalization degenerates to.

``Specialization`` implements the static-analysis hook of Sec. 4.2: when
``Derive`` reaches a fully applied primitive whose arguments at the
specialization's positions are closed terms (hence their changes are
provably nil, Thm. 2.10), it emits the specialized -- typically
self-maintainable -- derivative instead of the generic one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from repro.data.change_values import Replace, oplus_value
from repro.lang.terms import Const, Term
from repro.lang.types import Schema, TBase, TChange, TFun, TVar, Type
from repro.semantics.thunk import force
from repro.semantics.values import Primitive


# Cost classes of the static cost oracle (see ``repro.analysis.cost``):
# how much work one application of a (derivative) primitive does on the
# group-change fast path, as a function of base-input size n and change
# size |dv|.
COST_CONSTANT = "O(1)"
COST_CHANGE = "O(|dv|)"
COST_RECOMPUTE = "O(n)"

_COST_CLASSES = (COST_CONSTANT, COST_CHANGE, COST_RECOMPUTE)


@dataclass(frozen=True)
class Specialization:
    """A derivative specialization triggered by statically-nil arguments.

    ``nil_positions`` are the (0-based) argument indices that must be
    closed terms for the specialization to apply; ``builder`` receives the
    original argument terms and the ``derive`` function, and returns the
    full derivative term for the application spine.
    """

    nil_positions: frozenset
    builder: Callable[[Sequence[Term], Callable[[Term], Term]], Term]
    description: str = ""


class ConstantSpec:
    """Specification of one primitive constant.

    Parameters
    ----------
    name:
        Surface name of the constant.
    schema:
        Type schema; schema variables range over base types.
    arity:
        Number of value parameters (0 for ground constants).
    impl:
        For ``arity == 0``, ignored (use ``value``); otherwise the host
        implementation, receiving one argument per parameter.  Arguments at
        ``lazy_positions`` arrive as unforced thunks.
    value:
        The runtime value of a ground constant.
    lazy_positions:
        Parameter indices the implementation promises not to force unless
        needed (Sec. 4.3's laziness).
    derivative:
        ``Derive(c)``: a ``ConstantSpec`` (for a derivative primitive), a
        ``Term``, or None to fall back to the trivial derivative.
    semantic_impl:
        Host implementation used by the denotational semantics; defaults
        to ``impl`` (which is correct whenever ``impl`` works on plain
        host values and applies function arguments via ``apply_semantic``).
    semantic_derivative:
        A zero-argument factory for ⟦c⟧Δ (Fig. 4h); defaults to the
        trivial derivative built from the semantic change algebra.
    specializations:
        Static nil-change specializations (Sec. 4.2), tried most-specific
        first by ``Derive``.
    cost:
        Optional cost-class annotation for the static cost oracle: one of
        ``COST_CONSTANT``/``COST_CHANGE``/``COST_RECOMPUTE``, describing
        one application of this primitive on the group-change fast path.
        Meaningful on *derivative* primitives; unannotated primitives
        default to ``O(1)`` in the oracle (base work is accounted to the
        base program, not the derivative).
    escaping_positions:
        Lazy positions whose thunk may *escape* into (or be forced on the
        way to) this primitive's result on the group-change fast path.
        The demand analysis treats an escaping lazy argument as demanded:
        whatever it closes over can be forced downstream, e.g. by the
        engine's ⊕ on the output change.  ``None`` (the default) means
        the signature is undeclared and *every* lazy position is assumed
        to escape -- the conservative sound default; audited plugins pass
        an explicit tuple (possibly empty) to opt out positions that are
        only forced on the Replace-fallback path, which the analysis
        deliberately does not model (Replace-optimism, Sec. 4.3).
    escape_guards:
        Mapping from an escaping position to a *guard*: the escaping
        position's thunk only escapes when the guard argument is not a
        statically-nil change.  A guard is either a position (an ``int``:
        nil means a detectably-nil change literal, e.g. ``GroupChange g
        0``) or a ``(guard, base)`` pair of positions: nil means the
        guard argument is a change literal that is provably nil
        *relative to* the base argument's literal (e.g. a
        ``Replace True`` condition change against a ``True`` condition
        -- the condition provably cannot flip).  Models primitives like
        ``singleton'`` that force their lazy base element exactly when
        the accompanying change is non-nil, and ``ifThenElse'`` whose
        branch values are forced exactly when the condition flips.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        arity: int = 0,
        impl: Optional[Callable[..., Any]] = None,
        value: Any = None,
        lazy_positions: Sequence[int] = (),
        derivative: Any = None,
        semantic_impl: Optional[Callable[..., Any]] = None,
        semantic_derivative: Optional[Callable[[], Any]] = None,
        specializations: Sequence[Specialization] = (),
        cost: Optional[str] = None,
        escaping_positions: Optional[Sequence[int]] = None,
        escape_guards: Optional[Dict[int, int]] = None,
    ):
        if arity > 0 and impl is None:
            raise ValueError(f"constant {name} with arity {arity} needs an impl")
        if cost is not None and cost not in _COST_CLASSES:
            raise ValueError(
                f"constant {name}: cost must be one of {_COST_CLASSES}, "
                f"got {cost!r}"
            )
        self.name = name
        self.schema = schema
        self.arity = arity
        self.impl = impl
        self.value = value
        self.lazy_positions = frozenset(lazy_positions)
        self.escape_declared = escaping_positions is not None
        if escaping_positions is None:
            # Undeclared: conservatively, every lazy thunk may escape.
            self.escaping_positions = frozenset(self.lazy_positions)
        else:
            self.escaping_positions = frozenset(escaping_positions)
            stray = self.escaping_positions - self.lazy_positions
            if stray:
                raise ValueError(
                    f"constant {name}: escaping_positions {sorted(stray)} "
                    "are not lazy positions (strict arguments are always "
                    "demanded; only lazy positions need escape facts)"
                )
        self.escape_guards: Dict[int, Tuple[int, Optional[int]]] = {}
        for position, guard in dict(escape_guards or {}).items():
            if position not in self.escaping_positions:
                raise ValueError(
                    f"constant {name}: escape guard on position {position} "
                    "which is not an escaping position"
                )
            if isinstance(guard, int):
                guard_position, base_position = guard, None
            else:
                try:
                    guard_position, base_position = guard
                except (TypeError, ValueError):
                    raise ValueError(
                        f"constant {name}: escape guard for position "
                        f"{position} must be a position or a "
                        f"(guard, base) pair, got {guard!r}"
                    ) from None
            for index in (guard_position, base_position):
                if index is None:
                    continue
                if not (0 <= index < arity) or index == position:
                    raise ValueError(
                        f"constant {name}: escape guard position {index} "
                        f"for position {position} is out of range"
                    )
            self.escape_guards[position] = (guard_position, base_position)
        self.derivative = derivative
        self.semantic_impl = semantic_impl
        self.semantic_derivative = semantic_derivative
        self.specializations = tuple(
            sorted(
                specializations,
                key=lambda spec: -len(spec.nil_positions),
            )
        )
        self.cost = cost
        self.is_trivial_derivative = False
        self._runtime_template: Optional[Primitive] = None

    # -- runtime ----------------------------------------------------------------

    def runtime_value(self, stats: Any = None) -> Any:
        """The value of this constant in the operational semantics."""
        if self.arity == 0:
            return self.value
        if self._runtime_template is None:
            self._runtime_template = Primitive(
                self.name, self.arity, self.impl, self.lazy_positions
            )
        if stats is None:
            return self._runtime_template
        return self._runtime_template.with_stats(stats)

    # -- denotational -------------------------------------------------------------

    def semantic(self) -> Any:
        """⟦c⟧: the constant's denotation over host values."""
        from repro.semantics.denotation import curry_host

        if self.arity == 0:
            return self.value
        impl = self.semantic_impl if self.semantic_impl is not None else self.impl
        if self.semantic_impl is None and self.lazy_positions:
            # The runtime impl expects thunks at lazy positions; feed it
            # pre-forced thunks so it also works on plain host values.
            from repro.semantics.thunk import Thunk

            base_impl = impl
            lazy = self.lazy_positions

            def strictified(*args: Any) -> Any:
                prepared = [
                    Thunk.ready(arg) if index in lazy else arg
                    for index, arg in enumerate(args)
                ]
                return base_impl(*prepared)

            impl = strictified
        return curry_host(impl, self.arity)

    def semantic_derivative_value(self) -> Any:
        """⟦c⟧Δ: the constant's change denotation (Fig. 4h)."""
        if self.semantic_derivative is not None:
            return self.semantic_derivative()
        if self.arity == 0:
            from repro.changes.semantic_algebra import semantic_nil

            return semantic_nil(self.value)
        return _trivial_semantic_derivative(self)

    # -- differentiation -------------------------------------------------------------

    def derivative_term(self) -> Term:
        """The term ``Derive(c)`` (Sec. 3.2, constant case)."""
        if isinstance(self.derivative, ConstantSpec):
            return Const(self.derivative)
        if isinstance(self.derivative, Term):
            return self.derivative
        return Const(trivial_derivative_spec(self))

    def __repr__(self) -> str:
        return f"ConstantSpec({self.name!r} : {self.schema!r})"


def _trivial_semantic_derivative(spec: ConstantSpec) -> Any:
    """``λa₁ da₁ … aₙ daₙ. c (a₁ ⊕ da₁) … ⊖ c a₁ …`` over semantic values."""
    from repro.changes.semantic_algebra import semantic_ominus, semantic_oplus
    from repro.semantics.denotation import apply_semantic, curry_host

    semantic_value = spec.semantic()
    arity = spec.arity

    def impl(*args: Any) -> Any:
        bases = args[0::2]
        changes = args[1::2]
        updated = [
            semantic_oplus(base, change) for base, change in zip(bases, changes)
        ]
        return semantic_ominus(
            apply_semantic(semantic_value, *updated),
            apply_semantic(semantic_value, *bases),
        )

    return curry_host(impl, 2 * arity)


_TRIVIAL_DERIVATIVE_CACHE: Dict[str, ConstantSpec] = {}


def trivial_derivative_spec(spec: ConstantSpec) -> ConstantSpec:
    """A generic (never self-maintainable) runtime derivative for ``spec``:

        c' a₁ da₁ … aₙ daₙ = Replace (c (a₁ ⊕ da₁) … (aₙ ⊕ daₙ))

    Always correct by Def. 2.6 -- ``Replace`` of the new output is a change
    from any old output -- but it recomputes from scratch, so efficient
    plugins override ``derivative`` (Sec. 4.1: "efficient derivatives for
    primitives are essential").
    """
    if spec.arity == 0:
        raise ValueError(
            f"ground constant {spec.name} has no derivative primitive; "
            "its change is a nil-change literal (handled by Derive)"
        )
    cached = _TRIVIAL_DERIVATIVE_CACHE.get(spec.name)
    if cached is not None:
        return cached

    runtime = spec.runtime_value()

    def impl(*args: Any) -> Any:
        from repro.semantics.eval import apply_value

        bases = args[0::2]
        changes = args[1::2]
        updated = [
            oplus_value(force(base), force(change))
            for base, change in zip(bases, changes)
        ]
        return Replace(apply_value(runtime, *updated))

    derived = ConstantSpec(
        name=f"{spec.name}'",
        schema=derivative_schema(spec.schema),
        arity=2 * spec.arity,
        impl=impl,
        cost=COST_RECOMPUTE,
    )
    derived.is_trivial_derivative = True
    _TRIVIAL_DERIVATIVE_CACHE[spec.name] = derived
    return derived


def change_type_skeleton(ty: Type) -> Type:
    """``Δτ`` computed structurally (Figs. 2 and 3), with schema variables
    treated as base types: ``Δa = Change a``."""
    if isinstance(ty, TFun):
        return TFun(
            ty.arg, TFun(change_type_skeleton(ty.arg), change_type_skeleton(ty.res))
        )
    if isinstance(ty, (TBase, TVar)):
        return TChange(ty)
    raise TypeError(f"unknown type node: {ty!r}")


def derivative_schema(schema: Schema) -> Schema:
    """The schema of ``Derive(c)`` given the schema of ``c``:
    ``σ₁ → … → σₙ → τ`` becomes ``σ₁ → Δσ₁ → … → σₙ → Δσₙ → Δτ``."""
    ty = schema.type
    arguments = []
    while isinstance(ty, TFun):
        arguments.append(ty.arg)
        ty = ty.res
    result: Type = change_type_skeleton(ty)
    for argument in reversed(arguments):
        result = TFun(argument, TFun(change_type_skeleton(argument), result))
    return Schema(schema.vars, result)


@dataclass
class BaseTypeSpec:
    """Specification of one base-type constructor.

    ``change_type`` gives ``Δι`` (defaulting to the erased
    ``Change ι`` ADT); ``change_structure`` gives the *semantic* change
    structure used by the validation layer; ``nil_literal`` produces a
    runtime nil change for literal values (used by ``Derive`` on ``Lit``
    nodes); ``group_for`` exposes the canonical abelian group on the type
    when one exists.
    """

    name: str
    type_arity: int = 0
    change_type: Optional[Callable[[TBase], Type]] = None
    change_structure: Optional[Callable[[TBase, Any], Any]] = None
    nil_literal: Optional[Callable[[Any, TBase, Any], Any]] = None
    group_for: Optional[Callable[[TBase, Any], Any]] = None


@dataclass
class Plugin:
    """A bundle of base types and constants."""

    name: str
    base_types: Dict[str, BaseTypeSpec] = field(default_factory=dict)
    constants: Dict[str, ConstantSpec] = field(default_factory=dict)

    def add_constant(self, spec: ConstantSpec) -> ConstantSpec:
        if spec.name in self.constants:
            raise ValueError(f"duplicate constant {spec.name} in plugin {self.name}")
        self.constants[spec.name] = spec
        return spec

    def add_base_type(self, spec: BaseTypeSpec) -> BaseTypeSpec:
        if spec.name in self.base_types:
            raise ValueError(f"duplicate base type {spec.name} in plugin {self.name}")
        self.base_types[spec.name] = spec
        return spec
