"""Naturals plugin -- the paper's motivating change structure (Sec. 2.1).

Naturals are where change structures earn their keep over plain groups:
``Δv = {dv ∈ Z | v + dv ≥ 0}`` genuinely depends on the base value, so
no abelian group induces it.  The *erased* change type is the whole of
``Int`` -- "we would have ΔNat = Int, even though not every integer is a
change for every natural number" (Sec. 3.1).  The extra inhabitants are
the "junk" of Sec. 3.3: behaviour on them is unconstrained, and
Theorem 3.11's side condition (the change term must erase from a real
change) is exactly what excludes them.  The tests demonstrate both sides:
Eq. (1) holds for valid changes; invalid ones may leave the naturals.

Primitives: ``addNat``, ``mulNat``, and ``monus`` (truncated
subtraction), plus conversions to/from ``Int``.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.changes.primitive import NAT_CHANGES
from repro.data.change_values import GroupChange, Replace, oplus_value
from repro.data.group import INT_ADD_GROUP
from repro.lang.types import Schema, TBase, TChange, TInt, fun_type
from repro.plugins.base import BaseTypeSpec, COST_CONSTANT, ConstantSpec, Plugin
from repro.semantics.denotation import curry_host
from repro.semantics.thunk import force

_PLUGIN: Optional[Plugin] = None

TNat = TBase("Nat")
_DNAT = TChange(TNat)


def _is_int_delta(change: Any) -> bool:
    return isinstance(change, GroupChange) and change.group == INT_ADD_GROUP


def plugin() -> Plugin:
    global _PLUGIN
    if _PLUGIN is not None:
        return _PLUGIN
    result = Plugin(name="naturals")

    result.add_base_type(
        BaseTypeSpec(
            name="Nat",
            change_structure=lambda ty, registry: NAT_CHANGES,
            nil_literal=lambda value, ty, registry: GroupChange(
                INT_ADD_GROUP, 0
            ),
            # No group: naturals have no inverses.  (The erased ⊕ still
            # uses integer deltas; validity is the caller's obligation.)
        )
    )

    nat_binop = Schema.mono(fun_type(TNat, TNat, TNat))

    def add_nat_derivative_impl(x: Any, dx: Any, y: Any, dy: Any) -> Any:
        dx = force(dx)
        dy = force(dy)
        if _is_int_delta(dx) and _is_int_delta(dy):
            # Valid inputs guarantee x+dx ≥ 0 and y+dy ≥ 0, so the sum of
            # deltas is a valid change for x+y.
            return GroupChange(INT_ADD_GROUP, dx.delta + dy.delta)
        new_x = oplus_value(force(x), dx)
        new_y = oplus_value(force(y), dy)
        return Replace(new_x + new_y)

    add_nat_derivative = result.add_constant(
        ConstantSpec(
            name="addNat'",
            cost=COST_CONSTANT,
            schema=Schema.mono(fun_type(TNat, _DNAT, TNat, _DNAT, _DNAT)),
            arity=4,
            impl=add_nat_derivative_impl,
            lazy_positions=(0, 2),
            # Audited: bases are forced only on the Replace fallback.
            escaping_positions=(),
        )
    )
    result.add_constant(
        ConstantSpec(
            name="addNat",
            schema=nat_binop,
            arity=2,
            impl=lambda a, b: a + b,
            derivative=add_nat_derivative,
            semantic_derivative=lambda: curry_host(
                lambda x, dx, y, dy: dx + dy, 4
            ),
        )
    )

    result.add_constant(
        ConstantSpec(
            name="mulNat",
            schema=nat_binop,
            arity=2,
            impl=lambda a, b: a * b,
            # Trivial derivative: recompute.  (The efficient mul' needs
            # signed intermediates; keeping this trivial shows plugins can
            # mix efficiency levels.)
        )
    )

    result.add_constant(
        ConstantSpec(
            name="monus",
            schema=nat_binop,
            arity=2,
            impl=lambda a, b: max(0, a - b),
            # monus is not linear (it clamps); only the trivial
            # recompute-derivative is uniformly correct.
        )
    )

    def nat_to_int_derivative_impl(x: Any, dx: Any) -> Any:
        # ΔNat and ΔInt share the integer-delta representation, so the
        # inclusion's derivative is the identity on changes.
        return force(dx)

    nat_to_int_derivative = result.add_constant(
        ConstantSpec(
            name="natToInt'",
            schema=Schema.mono(fun_type(TNat, _DNAT, TChange(TInt))),
            arity=2,
            impl=nat_to_int_derivative_impl,
            lazy_positions=(0,),
            # Audited: the base is never forced on any path.
            escaping_positions=(),
        )
    )
    result.add_constant(
        ConstantSpec(
            name="natToInt",
            schema=Schema.mono(fun_type(TNat, TInt)),
            arity=1,
            impl=lambda a: a,
            derivative=nat_to_int_derivative,
        )
    )

    def int_to_nat_impl(a: Any) -> Any:
        if a < 0:
            raise ValueError(f"intToNat of negative value {a}")
        return a

    result.add_constant(
        ConstantSpec(
            name="intToNat",
            schema=Schema.mono(fun_type(TInt, TNat)),
            arity=1,
            impl=int_to_nat_impl,
        )
    )

    _PLUGIN = result
    return result
