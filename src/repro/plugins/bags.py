"""Bags plugin -- the heart of the case study (Sec. 4.4).

Primitives follow Gluche et al. as adapted by the paper: constructors
``emptyBag``/``singleton``/``merge``/``negate`` (the abelian-group
presentation of bags) and the fold ``foldBag g f``, the unique group
homomorphism extending ``f`` into the abelian group ``g``.

Derivative highlights (all from Sec. 4.3/4.4):

* ``merge' u du v dv = merge du dv`` -- self-maintainable;
* ``foldBag' g f`` (when static analysis shows ``dg``, ``df`` nil)
  ``= λb db. GroupChange g (foldBag g f db)`` -- self-maintainable, and
  declared *lazy in the base bag*, so the base argument thunk is never
  forced (this is what turns O(n) updates into O(|change|));
* the generic ``foldBag'`` (changing ``g`` or ``f``) falls back to
  recomputation, which is why the nil-change analysis matters.

``mapBag``/``flatMapBag``/``filterBag`` are provided as primitives with
the same specialization structure ("the derivative of map f xs ignores
xs if the changes to f are always nil").
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.changes.bag import BAG_CHANGES
from repro.data.bag import Bag
from repro.data.change_values import GroupChange, Replace, oplus_value
from repro.data.group import BAG_GROUP
from repro.lang.terms import Const, Term
from repro.lang.types import (
    Schema,
    TBag,
    TBool,
    TChange,
    TGroup,
    TVar,
    fun_type,
)
from repro.plugins.base import (
    COST_CHANGE,
    COST_CONSTANT,
    BaseTypeSpec,
    ConstantSpec,
    Plugin,
    Specialization,
)
from repro.semantics.denotation import apply_semantic, curry_host
from repro.semantics.thunk import force

_PLUGIN: Optional[Plugin] = None


def _is_bag_delta(change: Any) -> bool:
    return isinstance(change, GroupChange) and change.group == BAG_GROUP


def bag_delta(change: Any, base: Any = None) -> Bag:
    """Extract the bag-of-insertions view of a bag change.

    ``GroupChange`` carries it directly; ``Replace`` needs the old bag to
    compute ``new ⊖ old`` (which forces the base -- callers that want
    self-maintainability must not hit this path with lazy bases).
    """
    if _is_bag_delta(change):
        return change.delta
    if isinstance(change, Replace):
        if base is None:
            raise TypeError("Replace bag change needs the base bag")
        return change.value.difference(force(base))
    raise TypeError(f"not a bag change: {change!r}")


def plugin() -> Plugin:
    global _PLUGIN
    if _PLUGIN is not None:
        return _PLUGIN
    result = Plugin(name="bags")

    result.add_base_type(
        BaseTypeSpec(
            name="Bag",
            type_arity=1,
            change_structure=lambda ty, registry: BAG_CHANGES,
            nil_literal=lambda value, ty, registry: GroupChange(
                BAG_GROUP, Bag.empty()
            ),
            group_for=lambda ty, registry: BAG_GROUP,
        )
    )

    a = TVar("a")
    b = TVar("b")
    bag_a = TBag(a)
    bag_b = TBag(b)

    result.add_constant(
        ConstantSpec(
            name="emptyBag",
            schema=Schema(("a",), bag_a),
            arity=0,
            value=Bag.empty(),
        )
    )

    result.add_constant(
        ConstantSpec(
            name="groupOnBags",
            schema=Schema(("a",), TGroup(bag_a)),
            arity=0,
            value=BAG_GROUP,
        )
    )

    # -- singleton ---------------------------------------------------------

    def singleton_derivative_impl(element: Any, element_change: Any) -> Any:
        from repro.data.change_values import is_nil_change

        element_change = force(element_change)
        if is_nil_change(element_change):
            return GroupChange(BAG_GROUP, Bag.empty())
        element = force(element)
        new_element = oplus_value(element, element_change)
        return GroupChange(
            BAG_GROUP,
            Bag.singleton(new_element).merge(Bag.singleton(element).negate()),
        )

    singleton_derivative = result.add_constant(ConstantSpec(
        name="singleton'",
        cost=COST_CONSTANT,
        schema=Schema(("a",), fun_type(a, TChange(a), TChange(bag_a))),
        arity=2,
        impl=singleton_derivative_impl,
        lazy_positions=(0,),
        # Audited: the lazy element is forced exactly when the element
        # change (position 1) is non-nil, so its escape is guarded on it.
        escaping_positions=(0,),
        escape_guards={0: 1},
    ))
    result.add_constant(
        ConstantSpec(
            name="singleton",
            schema=Schema(("a",), fun_type(a, bag_a)),
            arity=1,
            impl=Bag.singleton,
            derivative=singleton_derivative,
            semantic_derivative=lambda: curry_host(
                lambda x, dx: _semantic_singleton_change(x, dx), 2
            ),
        )
    )

    # -- merge / negate ------------------------------------------------------

    def merge_derivative_impl(u: Any, du: Any, v: Any, dv: Any) -> Any:
        du = force(du)
        dv = force(dv)
        if _is_bag_delta(du) and _is_bag_delta(dv):
            # Derive(merge) = λu du v dv. merge du dv (Sec. 3.7).
            return GroupChange(BAG_GROUP, du.delta.merge(dv.delta))
        new_u = oplus_value(force(u), du)
        new_v = oplus_value(force(v), dv)
        return Replace(new_u.merge(new_v))

    merge_derivative = result.add_constant(ConstantSpec(
        name="merge'",
        cost=COST_CHANGE,
        schema=Schema(
            ("a",),
            fun_type(bag_a, TChange(bag_a), bag_a, TChange(bag_a), TChange(bag_a)),
        ),
        arity=4,
        impl=merge_derivative_impl,
        lazy_positions=(0, 2),
        # Audited: bases are forced only on the Replace-fallback path.
        escaping_positions=(),
    ))
    result.add_constant(
        ConstantSpec(
            name="merge",
            schema=Schema(("a",), fun_type(bag_a, bag_a, bag_a)),
            arity=2,
            impl=lambda u, v: u.merge(v),
            derivative=merge_derivative,
            semantic_derivative=lambda: curry_host(
                lambda u, du, v, dv: du.merge(dv), 4
            ),
        )
    )

    def negate_derivative_impl(v: Any, dv: Any) -> Any:
        dv = force(dv)
        if _is_bag_delta(dv):
            return GroupChange(BAG_GROUP, dv.delta.negate())
        return Replace(oplus_value(force(v), dv).negate())

    negate_derivative = result.add_constant(ConstantSpec(
        name="negate'",
        cost=COST_CHANGE,
        schema=Schema(
            ("a",), fun_type(bag_a, TChange(bag_a), TChange(bag_a))
        ),
        arity=2,
        impl=negate_derivative_impl,
        lazy_positions=(0,),
        # Audited: the base is forced only on the Replace fallback.
        escaping_positions=(),
    ))
    result.add_constant(
        ConstantSpec(
            name="negate",
            schema=Schema(("a",), fun_type(bag_a, bag_a)),
            arity=1,
            impl=Bag.negate,
            derivative=negate_derivative,
            semantic_derivative=lambda: curry_host(
                lambda v, dv: dv.negate(), 2
            ),
        )
    )

    # -- foldBag ------------------------------------------------------------------

    def fold_bag_impl(group: Any, fn: Any, bag: Any) -> Any:
        return bag.fold_group(group, lambda element: apply_semantic(fn, element))

    def fold_bag_nil_impl(group: Any, fn: Any, bag: Any, bag_change: Any) -> Any:
        """``foldBag'`` with dg, df statically nil (Sec. 4.4):

            λb db. GroupChange g (foldBag g f db)

        Lazy in ``bag``: with a ``GroupChange`` input it is never forced.
        """
        bag_change = force(bag_change)
        if _is_bag_delta(bag_change):
            return GroupChange(
                group,
                bag_change.delta.fold_group(
                    group, lambda element: apply_semantic(fn, element)
                ),
            )
        if isinstance(bag_change, Replace):
            return Replace(fold_bag_impl(group, fn, bag_change.value))
        raise TypeError(f"not a bag change: {bag_change!r}")

    fold_bag_nil = ConstantSpec(
        name="foldBag'_gf",
        cost=COST_CHANGE,
        schema=Schema(
            ("a", "b"),
            fun_type(
                TGroup(b),
                fun_type(a, b),
                bag_a,
                TChange(bag_a),
                TChange(b),
            ),
        ),
        arity=4,
        impl=fold_bag_nil_impl,
        lazy_positions=(2,),
        # Audited: the base bag is forced only on the Replace fallback --
        # the Sec. 4.4 self-maintainability payoff depends on this.
        escaping_positions=(),
    )
    result.add_constant(fold_bag_nil)

    def fold_bag_specialized(
        arguments: Sequence[Term], derive: Callable[[Term], Term]
    ) -> Term:
        group_term, fn_term, bag_term = arguments
        return Const(fold_bag_nil)(group_term, fn_term, bag_term, derive(bag_term))

    result.add_constant(
        ConstantSpec(
            name="foldBag",
            schema=Schema(
                ("a", "b"), fun_type(TGroup(b), fun_type(a, b), bag_a, b)
            ),
            arity=3,
            impl=fold_bag_impl,
            specializations=[
                Specialization(
                    nil_positions=frozenset({0, 1}),
                    builder=fold_bag_specialized,
                    description="dg, df nil ⇒ self-maintainable foldBag'",
                )
            ],
        )
    )

    # -- mapBag / flatMapBag / filterBag ---------------------------------------------

    def map_bag_impl(fn: Any, bag: Any) -> Any:
        return bag.map(lambda element: apply_semantic(fn, element))

    def map_bag_nil_impl(fn: Any, bag: Any, bag_change: Any) -> Any:
        bag_change = force(bag_change)
        if _is_bag_delta(bag_change):
            return GroupChange(BAG_GROUP, map_bag_impl(fn, bag_change.delta))
        if isinstance(bag_change, Replace):
            return Replace(map_bag_impl(fn, bag_change.value))
        raise TypeError(f"not a bag change: {bag_change!r}")

    map_bag_nil = ConstantSpec(
        name="mapBag'_f",
        cost=COST_CHANGE,
        schema=Schema(
            ("a", "b"),
            fun_type(fun_type(a, b), bag_a, TChange(bag_a), TChange(bag_b)),
        ),
        arity=3,
        impl=map_bag_nil_impl,
        lazy_positions=(1,),
        # Audited: the base bag is forced only on the Replace fallback.
        escaping_positions=(),
    )
    result.add_constant(map_bag_nil)

    def map_bag_specialized(
        arguments: Sequence[Term], derive: Callable[[Term], Term]
    ) -> Term:
        fn_term, bag_term = arguments
        return Const(map_bag_nil)(fn_term, bag_term, derive(bag_term))

    result.add_constant(
        ConstantSpec(
            name="mapBag",
            schema=Schema(("a", "b"), fun_type(fun_type(a, b), bag_a, bag_b)),
            arity=2,
            impl=map_bag_impl,
            specializations=[
                Specialization(
                    nil_positions=frozenset({0}),
                    builder=map_bag_specialized,
                    description="df nil ⇒ map the change only",
                )
            ],
        )
    )

    def flat_map_bag_impl(fn: Any, bag: Any) -> Any:
        return bag.flat_map(lambda element: apply_semantic(fn, element))

    def flat_map_bag_nil_impl(fn: Any, bag: Any, bag_change: Any) -> Any:
        bag_change = force(bag_change)
        if _is_bag_delta(bag_change):
            return GroupChange(BAG_GROUP, flat_map_bag_impl(fn, bag_change.delta))
        if isinstance(bag_change, Replace):
            return Replace(flat_map_bag_impl(fn, bag_change.value))
        raise TypeError(f"not a bag change: {bag_change!r}")

    flat_map_bag_nil = ConstantSpec(
        name="flatMapBag'_f",
        cost=COST_CHANGE,
        schema=Schema(
            ("a", "b"),
            fun_type(
                fun_type(a, bag_b), bag_a, TChange(bag_a), TChange(bag_b)
            ),
        ),
        arity=3,
        impl=flat_map_bag_nil_impl,
        lazy_positions=(1,),
        # Audited: the base bag is forced only on the Replace fallback.
        escaping_positions=(),
    )
    result.add_constant(flat_map_bag_nil)

    def flat_map_bag_specialized(
        arguments: Sequence[Term], derive: Callable[[Term], Term]
    ) -> Term:
        fn_term, bag_term = arguments
        return Const(flat_map_bag_nil)(fn_term, bag_term, derive(bag_term))

    result.add_constant(
        ConstantSpec(
            name="flatMapBag",
            schema=Schema(
                ("a", "b"), fun_type(fun_type(a, bag_b), bag_a, bag_b)
            ),
            arity=2,
            impl=flat_map_bag_impl,
            specializations=[
                Specialization(
                    nil_positions=frozenset({0}),
                    builder=flat_map_bag_specialized,
                    description="df nil ⇒ flatMap the change only",
                )
            ],
        )
    )

    def filter_bag_impl(predicate: Any, bag: Any) -> Any:
        return bag.filter(lambda element: apply_semantic(predicate, element))

    def filter_bag_nil_impl(predicate: Any, bag: Any, bag_change: Any) -> Any:
        bag_change = force(bag_change)
        if _is_bag_delta(bag_change):
            return GroupChange(BAG_GROUP, filter_bag_impl(predicate, bag_change.delta))
        if isinstance(bag_change, Replace):
            return Replace(filter_bag_impl(predicate, bag_change.value))
        raise TypeError(f"not a bag change: {bag_change!r}")

    filter_bag_nil = ConstantSpec(
        name="filterBag'_p",
        cost=COST_CHANGE,
        schema=Schema(
            ("a",),
            fun_type(fun_type(a, TBool), bag_a, TChange(bag_a), TChange(bag_a)),
        ),
        arity=3,
        impl=filter_bag_nil_impl,
        lazy_positions=(1,),
        # Audited: the base bag is forced only on the Replace fallback.
        escaping_positions=(),
    )
    result.add_constant(filter_bag_nil)

    def filter_bag_specialized(
        arguments: Sequence[Term], derive: Callable[[Term], Term]
    ) -> Term:
        predicate_term, bag_term = arguments
        return Const(filter_bag_nil)(predicate_term, bag_term, derive(bag_term))

    result.add_constant(
        ConstantSpec(
            name="filterBag",
            schema=Schema(("a",), fun_type(fun_type(a, TBool), bag_a, bag_a)),
            arity=2,
            impl=filter_bag_impl,
            specializations=[
                Specialization(
                    nil_positions=frozenset({0}),
                    builder=filter_bag_specialized,
                    description="dp nil ⇒ filter the change only",
                )
            ],
        )
    )

    _PLUGIN = result
    return result


def _semantic_singleton_change(element: Any, element_change: Any) -> Bag:
    from repro.changes.semantic_algebra import semantic_oplus

    new_element = semantic_oplus(element, element_change)
    if new_element == element:
        return Bag.empty()
    return Bag.singleton(new_element).merge(Bag.singleton(element).negate())
