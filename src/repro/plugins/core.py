"""Core plugin: the ``Group`` and ``Change`` base types, plus first-class
change manipulation.

"Changes are simple first-class values of this language" (Sec. 1): the
erased change ADT (Sec. 4.4) gets a base type ``Change τ`` and the three
operations of Fig. 2 as primitives --

* ``oplus  : a → Change a → a``        (``⊕``)
* ``ominus : a → a → Change a``        (``⊖``, the generic Replace-based one)
* ``nilChange : a → Change a``         (``0_v = v ⊖ v``)

so object programs can *produce and consume* changes, not only be
differentiated.  First-class abelian groups (Fig. 6) get the ``Group τ``
base type.  Neither carries exploitable change structure: both use
replacement changes.
"""

from __future__ import annotations

from typing import Optional

from repro.changes.primitive import ReplaceChangeStructure
from repro.data.change_values import (
    Replace,
    nil_change_for,
    ominus_values,
    oplus_value,
)
from repro.lang.types import Schema, TChange, TVar, fun_type
from repro.plugins.base import BaseTypeSpec, ConstantSpec, Plugin

_PLUGIN: Optional[Plugin] = None


def plugin() -> Plugin:
    global _PLUGIN
    if _PLUGIN is not None:
        return _PLUGIN
    result = Plugin(name="core")
    result.add_base_type(
        BaseTypeSpec(
            name="Group",
            type_arity=1,
            change_structure=lambda ty, registry: ReplaceChangeStructure(
                name=f"Replace({ty!r})"
            ),
            nil_literal=lambda value, ty, registry: Replace(value),
        )
    )
    result.add_base_type(
        BaseTypeSpec(
            name="Change",
            type_arity=1,
            change_structure=lambda ty, registry: ReplaceChangeStructure(
                name=f"Replace({ty!r})"
            ),
            nil_literal=lambda value, ty, registry: Replace(value),
        )
    )
    a = TVar("a")
    result.add_constant(
        ConstantSpec(
            name="oplus",
            schema=Schema(("a",), fun_type(a, TChange(a), a)),
            arity=2,
            impl=oplus_value,
        )
    )
    result.add_constant(
        ConstantSpec(
            name="ominus",
            schema=Schema(("a",), fun_type(a, a, TChange(a))),
            arity=2,
            impl=ominus_values,
        )
    )
    result.add_constant(
        ConstantSpec(
            name="nilChange",
            schema=Schema(("a",), fun_type(a, TChange(a))),
            arity=1,
            impl=nil_change_for,
        )
    )

    _PLUGIN = result
    return result
