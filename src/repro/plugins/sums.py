"""Tagged-unions plugin.

``Sum a b`` with the usual introduction (``inl``/``inr``) and elimination
(``matchSum``) forms.  The paper's plugin ships sums "with few
optimizations for their derivatives" (Sec. 4.4); going one step further
(the Sec. 6 algebraic-data-types direction), changes here are
*structural*: ``InlChange(da)`` / ``InrChange(db)`` carry payload changes
that stay on one side, so

* ``inl' a da = InlChange(da)`` is self-maintainable, and
* ``matchSum'`` propagates the matching branch's *function change* when
  the scrutinee stays on its side, recomputing only on side switches.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.changes.primitive import ReplaceChangeStructure
from repro.data.change_values import Replace, oplus_value
from repro.data.sum import Inl, InlChange, Inr, InrChange
from repro.lang.types import Schema, TChange, TSum, TVar, fun_type
from repro.plugins.base import BaseTypeSpec, COST_CONSTANT, ConstantSpec, Plugin
from repro.semantics.denotation import apply_semantic
from repro.semantics.eval import apply_value
from repro.semantics.thunk import force

_PLUGIN: Optional[Plugin] = None


def plugin() -> Plugin:
    global _PLUGIN
    if _PLUGIN is not None:
        return _PLUGIN
    result = Plugin(name="sums")

    result.add_base_type(
        BaseTypeSpec(
            name="Sum",
            type_arity=2,
            change_structure=lambda ty, registry: ReplaceChangeStructure(
                name=f"Replace({ty!r})"
            ),
            nil_literal=lambda value, ty, registry: _nil_sum_change(
                value, ty, registry
            ),
        )
    )

    a = TVar("a")
    b = TVar("b")
    c = TVar("c")
    sum_type = TSum(a, b)

    inl_derivative = result.add_constant(
        ConstantSpec(
            name="inl'",
            cost=COST_CONSTANT,
            schema=Schema(
                ("a", "b"), fun_type(a, TChange(a), TChange(sum_type))
            ),
            arity=2,
            impl=lambda value, change: InlChange(force(change)),
            lazy_positions=(0,),
            # Audited: the base payload is never forced on any path.
            escaping_positions=(),
        )
    )
    result.add_constant(
        ConstantSpec(
            name="inl",
            schema=Schema(("a", "b"), fun_type(a, sum_type)),
            arity=1,
            impl=Inl,
            derivative=inl_derivative,
        )
    )

    inr_derivative = result.add_constant(
        ConstantSpec(
            name="inr'",
            cost=COST_CONSTANT,
            schema=Schema(
                ("a", "b"), fun_type(b, TChange(b), TChange(sum_type))
            ),
            arity=2,
            impl=lambda value, change: InrChange(force(change)),
            lazy_positions=(0,),
            # Audited: the base payload is never forced on any path.
            escaping_positions=(),
        )
    )
    result.add_constant(
        ConstantSpec(
            name="inr",
            schema=Schema(("a", "b"), fun_type(b, sum_type)),
            arity=1,
            impl=Inr,
            derivative=inr_derivative,
        )
    )

    def match_impl(value: Any, on_left: Any, on_right: Any) -> Any:
        if isinstance(value, Inl):
            return apply_semantic(on_left, value.value)
        if isinstance(value, Inr):
            return apply_semantic(on_right, value.value)
        raise TypeError(f"matchSum on non-sum value: {value!r}")

    def match_derivative_impl(
        scrutinee: Any,
        scrutinee_change: Any,
        on_left: Any,
        on_left_change: Any,
        on_right: Any,
        on_right_change: Any,
    ) -> Any:
        scrutinee_change = force(scrutinee_change)
        # Fast paths: the scrutinee stays on its side, so the output
        # change is the matching branch's function change applied to the
        # payload and its change (Thm. 2.9 at the branch).
        if isinstance(scrutinee_change, InlChange) and isinstance(
            scrutinee, Inl
        ):
            return apply_value(
                force(on_left_change), scrutinee.value, scrutinee_change.change
            )
        if isinstance(scrutinee_change, InrChange) and isinstance(
            scrutinee, Inr
        ):
            return apply_value(
                force(on_right_change),
                scrutinee.value,
                scrutinee_change.change,
            )
        # Side switch or Replace: recompute on the updated everything.
        new_scrutinee = oplus_value(scrutinee, scrutinee_change)
        new_left = oplus_value(force(on_left), force(on_left_change))
        new_right = oplus_value(force(on_right), force(on_right_change))
        return Replace(match_impl(new_scrutinee, new_left, new_right))

    match_derivative = result.add_constant(
        ConstantSpec(
            name="matchSum'",
            schema=Schema(
                ("a", "b", "c"),
                fun_type(
                    sum_type,
                    TChange(sum_type),
                    fun_type(a, c),
                    fun_type(a, TChange(a), TChange(c)),
                    fun_type(b, c),
                    fun_type(b, TChange(b), TChange(c)),
                    TChange(c),
                ),
            ),
            arity=6,
            impl=match_derivative_impl,
            lazy_positions=(2, 4),
            # Audited: branch base functions are forced only on the
            # side-switch/Replace fallback.
            escaping_positions=(),
        )
    )
    result.add_constant(
        ConstantSpec(
            name="matchSum",
            schema=Schema(
                ("a", "b", "c"),
                fun_type(sum_type, fun_type(a, c), fun_type(b, c), c),
            ),
            arity=3,
            impl=match_impl,
            derivative=match_derivative,
        )
    )

    _PLUGIN = result
    return result


def _nil_sum_change(value: Any, ty, registry) -> Any:
    """A detectably-nil change for a sum literal: the nil of its payload,
    wrapped on the matching side."""
    if isinstance(value, Inl):
        return InlChange(
            registry.nil_change_literal(value.value, ty.args[0])
        )
    if isinstance(value, Inr):
        return InrChange(
            registry.nil_change_literal(value.value, ty.args[1])
        )
    return Replace(value)
