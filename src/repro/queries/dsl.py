"""The query combinators.

A ``Query`` is a *description* of a computation over a bag of rows; each
combinator stacks another primitive application, and ``to_term`` reifies
the whole pipeline as a closed λ-term over the source bag.  Because every
stage is a plugin primitive with a derivative specialization, the reified
term's derivative is self-maintainable end to end whenever the row
functions are closed -- which they always are here, since they are built
from literals and the bound row variable.

Row functions are written as Python callables receiving the row *term*::

    from repro.queries import Query, row

    revenue = (
        Query.source("sales", TPair(TInt, TInt))
        .where(lambda r: const("leqInt")(100, snd(r)))
        .group_sum(key=lambda r: fst(r), value=lambda r: snd(r))
    )

"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.lang.builders import lam
from repro.lang.terms import Lam, Term, Var
from repro.lang.types import TBag, TInt, TMap, Type
from repro.plugins.registry import Registry, standard_registry

RowFn = Callable[[Term], Any]


def row(name: str = "query_row") -> Var:
    """The row variable, for writing row functions point-free-ish."""
    return Var(name)


class Query:
    """An immutable query description over ``Bag row_type``."""

    _ROW = "query_row"

    def __init__(
        self,
        source_name: str,
        row_type: Type,
        body: Term,
        registry: Optional[Registry] = None,
        result_type: Optional[Type] = None,
        source_row_type: Optional[Type] = None,
    ):
        self.source_name = source_name
        self.row_type = row_type  # row type at the *current* stage
        self.source_row_type = (
            source_row_type if source_row_type is not None else row_type
        )
        self._body = body  # a term of some Bag type over Var(source_name)
        self.registry = registry if registry is not None else standard_registry()
        self.result_type = result_type  # None while still a bag pipeline

    # -- construction ----------------------------------------------------------

    @staticmethod
    def source(
        name: str,
        row_type: Type,
        registry: Optional[Registry] = None,
    ) -> "Query":
        """A query reading the source bag unchanged."""
        if name.startswith("d"):
            raise ValueError(
                "source names must not start with 'd' (reserved for changes)"
            )
        return Query(name, row_type, Var(name), registry)

    def _const(self, name: str) -> Term:
        return self.registry.constant(name)

    def _row_lambda(self, fn: RowFn) -> Term:
        return lam((self._ROW, self.row_type))(fn(Var(self._ROW)))

    def _pipeline(self, body: Term, row_type: Optional[Type] = None) -> "Query":
        if self.result_type is not None:
            raise TypeError(
                "query already aggregated; no further stages allowed"
            )
        return Query(
            self.source_name,
            row_type if row_type is not None else self.row_type,
            body,
            self.registry,
            source_row_type=self.source_row_type,
        )

    # -- bag → bag stages ----------------------------------------------------------

    def where(self, predicate: RowFn) -> "Query":
        """Keep rows satisfying ``predicate`` (reifies to ``filterBag``)."""
        return self._pipeline(
            self._const("filterBag")(self._row_lambda(predicate), self._body)
        )

    def select(self, fn: RowFn, result_row_type: Type) -> "Query":
        """Transform each row (reifies to ``mapBag``)."""
        return self._pipeline(
            self._const("mapBag")(self._row_lambda(fn), self._body),
            row_type=result_row_type,
        )

    def flat_select(self, fn: RowFn, result_row_type: Type) -> "Query":
        """Map each row to a bag of rows (reifies to ``flatMapBag``)."""
        return self._pipeline(
            self._const("flatMapBag")(self._row_lambda(fn), self._body),
            row_type=result_row_type,
        )

    # -- aggregations (terminal stages) -----------------------------------------------

    def _aggregated(self, body: Term, result_type: Type) -> "Query":
        if self.result_type is not None:
            raise TypeError("query already aggregated")
        return Query(
            self.source_name,
            self.row_type,
            body,
            self.registry,
            result_type,
            source_row_type=self.source_row_type,
        )

    def sum(self, value: Optional[RowFn] = None) -> "Query":
        """Sum an integer projection of the rows (``foldBag gplus``)."""
        projection = (
            self._row_lambda(value)
            if value is not None
            else self._const("id")
        )
        return self._aggregated(
            self._const("foldBag")(self._const("gplus"), projection, self._body),
            TInt,
        )

    def count(self) -> "Query":
        """Count rows (with multiplicity)."""
        return self._aggregated(
            self._const("foldBag")(
                self._const("gplus"),
                self._row_lambda(lambda _row: 1),
                self._body,
            ),
            TInt,
        )

    def group_sum(
        self,
        key: RowFn,
        value: RowFn,
        key_type: Type = TInt,
    ) -> "Query":
        """A grouped integer aggregation: ``Map key (Σ value)`` -- the
        incremental *index* of the SQUOPT motivation."""
        mapper = self._row_lambda(
            lambda r: self._const("singletonMap")(key(r), value(r))
        )
        body = self._const("foldBag")(
            self._const("groupOnMaps")(self._const("gplus")),
            mapper,
            self._body,
        )
        return self._aggregated(body, TMap(key_type, TInt))

    def group_bags(
        self,
        key: RowFn,
        value: RowFn,
        key_type: Type,
        value_type: Type,
    ) -> "Query":
        """Group values into per-key bags: ``Map key (Bag value)``."""
        mapper = self._row_lambda(
            lambda r: self._const("singletonMap")(
                key(r), self._const("singleton")(value(r))
            )
        )
        body = self._const("foldBag")(
            self._const("groupOnMaps")(self._const("groupOnBags")),
            mapper,
            self._body,
        )
        return self._aggregated(body, TMap(key_type, TBag(value_type)))

    # -- reification --------------------------------------------------------------------

    def to_term(self) -> Lam:
        """The reified query: ``λ<source>. <pipeline>``."""
        return Lam(self.source_name, self._body, TBag(self.source_row_type))

    def materialize(self, initial_rows=None, **engine_options):
        """Compile to an incrementally maintained view (optionally loading
        ``initial_rows``)."""
        from repro.queries.view import MaterializedView

        view = MaterializedView(self, **engine_options)
        if initial_rows is not None:
            view.load(initial_rows)
        return view

    def __repr__(self) -> str:
        from repro.lang.pretty import pretty

        return f"Query({pretty(self.to_term())})"
