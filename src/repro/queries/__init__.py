"""A reified collection-query layer over the object language.

The paper's motivation includes the SQUOPT project ("reify your
collection queries for modularity and speed", Sec. 6): queries written as
host-language combinators are *reified* into object-language terms, which
ILC can then differentiate -- turning every query into an incrementally
maintained materialized view.

``Query`` builds terms; ``MaterializedView`` wraps the incremental engine
with a record-oriented API (insert/delete/update).
"""

from repro.queries.dsl import Query, row
from repro.queries.view import MaterializedView

__all__ = ["MaterializedView", "Query", "row"]
