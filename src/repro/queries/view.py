"""Materialized views: record-oriented incremental maintenance.

Wraps the incremental engine with the vocabulary of view maintenance
(Gupta & Mumick; Blakeley et al. -- the paper's §5.2.1 lineage): load a
base table, then ``insert``/``delete``/``update`` records and read the
maintained result.  Every mutation is translated into a bag change and
pushed through the statically-derived derivative; ``self_maintainable``
reports whether maintenance provably never rescans the base table.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.analysis.self_maintainability import analyze_self_maintainability
from repro.data.bag import Bag
from repro.data.change_values import GroupChange
from repro.data.group import BAG_GROUP
from repro.incremental.engine import IncrementalProgram


class MaterializedView:
    """An incrementally maintained query result."""

    def __init__(self, query, **engine_options: Any):
        self.query = query
        self.program = IncrementalProgram(
            query.to_term(), query.registry, **engine_options
        )
        self._loaded = False
        self._batch: Optional[Bag] = None

    # -- loading ------------------------------------------------------------

    def load(self, rows: Iterable[Any]) -> Any:
        """Run the base query over ``rows`` and start maintaining."""
        table = rows if isinstance(rows, Bag) else Bag.from_iterable(rows)
        self._loaded = True
        return self.program.initialize(table)

    # -- mutations -----------------------------------------------------------

    def _require_loaded(self) -> None:
        if not self._loaded:
            raise RuntimeError("load() the view before mutating it")

    def apply_delta(self, delta: Bag) -> Any:
        """Apply a bag of signed row insertions in one maintenance step."""
        self._require_loaded()
        if self._batch is not None:
            self._batch = self._batch.merge(delta)
            return self.program.output
        return self.program.step(GroupChange(BAG_GROUP, delta))

    def insert(self, *rows: Any) -> Any:
        return self.apply_delta(Bag.from_iterable(rows))

    def delete(self, *rows: Any) -> Any:
        return self.apply_delta(Bag.from_iterable(rows).negate())

    def update(self, old_row: Any, new_row: Any) -> Any:
        """Replace one occurrence of ``old_row`` with ``new_row``."""
        return self.apply_delta(
            Bag.from_counts([(old_row, -1), (new_row, 1)])
        )

    # -- batching -------------------------------------------------------------

    def batch(self) -> "_Batch":
        """Collect several mutations into one maintenance step::

            with view.batch():
                view.insert(a)
                view.delete(b)
        """
        self._require_loaded()
        return _Batch(self)

    # -- reads ------------------------------------------------------------------

    @property
    def value(self) -> Any:
        self._require_loaded()
        return self.program.output

    def recompute(self) -> Any:
        return self.program.recompute()

    def verify(self) -> bool:
        return self.program.verify()

    @property
    def self_maintainable(self) -> bool:
        """True if maintenance provably never reads the base table
        (Sec. 4.3 -- the same notion as for database views)."""
        return analyze_self_maintainability(
            self.program.derived_term
        ).self_maintainable

    def __repr__(self) -> str:
        state = "loaded" if self._loaded else "empty"
        return f"MaterializedView({self.query.source_name}, {state})"


class _Batch:
    def __init__(self, view: MaterializedView):
        self._view = view

    def __enter__(self) -> "_Batch":
        self._view._batch = Bag.empty()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pending = self._view._batch
        self._view._batch = None
        if exc_type is None and pending is not None and not pending.is_empty():
            self._view.apply_delta(pending)
