"""Partitioned bags with parallel derivative execution.

Section 4.4 of the paper proves bag changes form an abelian group and
that ``foldBag f`` is a group homomorphism::

    foldBag f (b₁ ⊎ b₂) = foldBag f b₁ ⊕ foldBag f b₂

so both the base fold and derivative application distribute over a
partition of the input: shard the bag, run the compiled per-shard base
fold and per-shard derivative steps independently, and ⊕-merge the
partial results under the output group.  This package is that plan:

* :mod:`repro.parallel.partitioner` -- the seeded, stable key
  partitioner that splits bag/map-of-bags values (and their changes)
  into per-shard slices whose group sum is the original value;
* :mod:`repro.parallel.executors` -- where shard programs run: in the
  calling process (deterministic, zero-overhead; the default) or in
  worker processes speaking the persistence codec as the wire format;
* :mod:`repro.parallel.sharded` -- :class:`ShardedIncrementalProgram`,
  the engine-shaped front that routes each incoming change row to its
  owning shard and materializes the merged output on demand;
* :mod:`repro.parallel.recovery` -- crash recovery over per-shard
  ``journal-<shard>/`` directories tied together by a root manifest
  recording the acknowledged consistent cut.
"""

from repro.parallel.errors import ParallelError
from repro.parallel.partitioner import Partitioner, infer_group_for_value
from repro.parallel.sharded import ShardedIncrementalProgram
from repro.parallel.recovery import recover_sharded

__all__ = [
    "ParallelError",
    "Partitioner",
    "ShardedIncrementalProgram",
    "infer_group_for_value",
    "recover_sharded",
]
