"""Where shard programs run.

Two executors implement the same per-shard surface:

* :class:`InProcessExecutor` keeps every shard engine in the calling
  process.  It is deterministic, adds no serialization cost, composes
  with per-shard durability layers, and is the default -- the win
  sharding buys on a single core is algorithmic (each shard's ``⊕``
  touches a partial output 1/N the size), not concurrency.
* :class:`ProcessExecutor` runs each shard in a worker process.  The
  wire format is the persistence codec: every request and reply crosses
  the pipe as a CRC-framed canonical-JSON message (the same envelope
  the journal uses), so only values the codec can represent -- i.e.
  values that could be journaled and recovered -- can cross a process
  boundary, and a corrupt frame is detected rather than absorbed.
  Fan-out calls (initialize, batched steps) are dispatched to every
  worker before any reply is collected, so workers overlap on
  multi-core hosts.

Both expose blocking per-shard calls; :class:`ShardedIncrementalProgram`
owns routing and merging above them.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Dict, List, Optional, Sequence

from repro.parallel.errors import ParallelError
from repro.persistence.codec import (
    canonical_json,
    checksum,
    decode_value,
    encode_value,
)

EXECUTORS = ("inprocess", "process")


class InProcessExecutor:
    """Shard programs in the calling process (the deterministic default)."""

    kind = "inprocess"

    def __init__(self, programs: Sequence[Any]):
        self.programs = list(programs)

    def initialize(self, shard_inputs: Sequence[Sequence[Any]]) -> List[Any]:
        return [
            program.initialize(*inputs)
            for program, inputs in zip(self.programs, shard_inputs)
        ]

    def step(self, shard: int, changes: Sequence[Any]) -> Any:
        return self.programs[shard].step(*changes)

    def step_batch(
        self, shard: int, rows: Sequence[Sequence[Any]], coalesce: bool = True
    ) -> Any:
        return self.programs[shard].step_batch(rows, coalesce=coalesce)

    def rebase(self, shard: int, changes: Sequence[Any]) -> Any:
        return self.programs[shard].rebase(*changes)

    def output(self, shard: int) -> Any:
        return self.programs[shard].output

    def outputs(self) -> List[Any]:
        return [program.output for program in self.programs]

    def recompute(self, shard: int) -> Any:
        return self.programs[shard].recompute()

    def verify(self, shard: int) -> bool:
        return self.programs[shard].verify()

    def resync(self, shard: int) -> Any:
        return self.programs[shard].resync()

    def current_inputs(self, shard: int) -> Sequence[Any]:
        return self.programs[shard].current_inputs()

    def steps(self, shard: int) -> int:
        return self.programs[shard].steps

    def coalesced_changes(self, shard: int) -> int:
        return getattr(self.programs[shard], "coalesced_changes", 0)

    def last_step_span(self, shard: int) -> Optional[Any]:
        return getattr(self.programs[shard], "last_step_span", None)

    def close(self) -> None:
        for program in self.programs:
            close = getattr(program, "close", None)
            if close is not None:
                close()


# -- codec wire protocol ----------------------------------------------------


def encode_message(payload: Dict[str, Any]) -> bytes:
    """Frame one message: ``crc32-hex newline canonical-json`` (the
    journal's integrity envelope, minus the append-only file)."""
    body = canonical_json(payload)
    return (checksum(body) + "\n" + body).encode("utf-8")


def decode_message(frame: bytes) -> Dict[str, Any]:
    text = frame.decode("utf-8")
    header, _, body = text.partition("\n")
    if checksum(body) != header:
        raise ParallelError("corrupt frame on the shard wire (CRC mismatch)")
    import json

    return json.loads(body)


def _worker_main(
    connection: Any,
    source: str,
    backend: str,
    strict: bool,
    caching: bool,
    registry_factory: str,
) -> None:
    """One shard worker: build the engine from the program source, then
    serve codec-framed requests until ``close``."""
    from importlib import import_module

    from repro.lang.parser import parse

    module_name, _, attr = registry_factory.partition(":")
    registry = getattr(import_module(module_name), attr)()
    term = parse(source, registry)
    if caching:
        from repro.incremental.caching import CachingIncrementalProgram

        program: Any = CachingIncrementalProgram(term, registry)
    else:
        from repro.incremental.engine import IncrementalProgram

        program = IncrementalProgram(
            term, registry, strict=strict, backend=backend
        )
    while True:
        try:
            request = decode_message(connection.recv_bytes())
        except EOFError:
            break
        op = request.get("op")
        try:
            if op == "initialize":
                value: Any = program.initialize(
                    *[decode_value(item) for item in request["inputs"]]
                )
            elif op == "step":
                value = program.step(
                    *[decode_value(item) for item in request["changes"]]
                )
            elif op == "step_batch":
                rows = [
                    [decode_value(item) for item in row]
                    for row in request["rows"]
                ]
                value = program.step_batch(
                    rows, coalesce=bool(request.get("coalesce", True))
                )
            elif op == "rebase":
                value = program.rebase(
                    *[decode_value(item) for item in request["changes"]]
                )
            elif op == "output":
                value = program.output
            elif op == "recompute":
                value = program.recompute()
            elif op == "verify":
                value = program.verify()
            elif op == "resync":
                value = program.resync()
            elif op == "current_inputs":
                value = list(program.current_inputs())
            elif op == "steps":
                value = program.steps
            elif op == "coalesced":
                value = getattr(program, "coalesced_changes", 0)
            elif op == "close":
                connection.send_bytes(
                    encode_message({"ok": True, "value": None})
                )
                break
            else:
                raise ParallelError(f"unknown shard op {op!r}")
            connection.send_bytes(
                encode_message({"ok": True, "value": encode_value(value)})
            )
        except Exception as error:  # surfaces as a typed error in the parent
            connection.send_bytes(
                encode_message(
                    {
                        "ok": False,
                        "error": f"{type(error).__name__}: {error}",
                    }
                )
            )
    connection.close()


class ProcessExecutor:
    """Shard programs in worker processes (codec wire format).

    Workers rebuild the engine from the pretty-printed program source
    (exactly what the journal's init record carries), so the executor
    needs a registry *factory* path rather than a live registry.
    """

    kind = "process"

    def __init__(
        self,
        shards: int,
        source: str,
        backend: str = "compiled",
        strict: bool = False,
        caching: bool = False,
        registry_factory: str = "repro.plugins.registry:standard_registry",
    ):
        context = multiprocessing.get_context("fork")
        self._connections = []
        self._processes = []
        for _ in range(shards):
            parent, child = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(child, source, backend, strict, caching, registry_factory),
                daemon=True,
            )
            process.start()
            child.close()
            self._connections.append(parent)
            self._processes.append(process)
        self._closed = False

    # -- plumbing ----------------------------------------------------------

    def _send(self, shard: int, request: Dict[str, Any]) -> None:
        self._connections[shard].send_bytes(encode_message(request))

    def _receive(self, shard: int) -> Any:
        try:
            reply = decode_message(self._connections[shard].recv_bytes())
        except EOFError:
            raise ParallelError(f"shard worker {shard} died mid-request")
        if not reply.get("ok"):
            raise ParallelError(
                f"shard {shard} failed: {reply.get('error', 'unknown error')}"
            )
        return decode_value(reply.get("value"))

    def _call(self, shard: int, request: Dict[str, Any]) -> Any:
        self._send(shard, request)
        return self._receive(shard)

    def _broadcast(self, requests: Sequence[Dict[str, Any]]) -> List[Any]:
        """Send one request per shard, then collect every reply -- the
        workers overlap while the parent waits."""
        for shard, request in enumerate(requests):
            self._send(shard, request)
        return [self._receive(shard) for shard in range(len(requests))]

    # -- per-shard surface -------------------------------------------------

    def initialize(self, shard_inputs: Sequence[Sequence[Any]]) -> List[Any]:
        return self._broadcast(
            [
                {
                    "op": "initialize",
                    "inputs": [encode_value(value) for value in inputs],
                }
                for inputs in shard_inputs
            ]
        )

    def step(self, shard: int, changes: Sequence[Any]) -> Any:
        return self._call(
            shard,
            {
                "op": "step",
                "changes": [encode_value(change) for change in changes],
            },
        )

    def step_batch(
        self, shard: int, rows: Sequence[Sequence[Any]], coalesce: bool = True
    ) -> Any:
        return self._call(
            shard,
            {
                "op": "step_batch",
                "rows": [
                    [encode_value(change) for change in row] for row in rows
                ],
                "coalesce": coalesce,
            },
        )

    def rebase(self, shard: int, changes: Sequence[Any]) -> Any:
        return self._call(
            shard,
            {
                "op": "rebase",
                "changes": [encode_value(change) for change in changes],
            },
        )

    def output(self, shard: int) -> Any:
        return self._call(shard, {"op": "output"})

    def outputs(self) -> List[Any]:
        return self._broadcast(
            [{"op": "output"} for _ in self._connections]
        )

    def recompute(self, shard: int) -> Any:
        return self._call(shard, {"op": "recompute"})

    def verify(self, shard: int) -> bool:
        return bool(self._call(shard, {"op": "verify"}))

    def resync(self, shard: int) -> Any:
        return self._call(shard, {"op": "resync"})

    def current_inputs(self, shard: int) -> Sequence[Any]:
        return self._call(shard, {"op": "current_inputs"})

    def steps(self, shard: int) -> int:
        return int(self._call(shard, {"op": "steps"}))

    def coalesced_changes(self, shard: int) -> int:
        return int(self._call(shard, {"op": "coalesced"}))

    def last_step_span(self, shard: int) -> Optional[Any]:
        return None  # spans do not cross the process boundary

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for shard, connection in enumerate(self._connections):
            try:
                self._call(shard, {"op": "close"})
            except (ParallelError, OSError, ValueError):
                pass
            connection.close()
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():
                process.terminate()


__all__ = [
    "EXECUTORS",
    "InProcessExecutor",
    "ProcessExecutor",
    "decode_message",
    "encode_message",
]
