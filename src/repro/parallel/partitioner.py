"""The seeded, stable key partitioner.

A partitioner splits a group-valued input into ``shards`` slices whose
group sum is the original value -- the precondition for the §4.4
distribution law ``foldBag f (b₁ ⊎ b₂) = foldBag f b₁ ⊕ foldBag f b₂``.
The same function splits *changes*, so every incoming change row can be
routed to the shard that owns the affected elements and applied there
alone.

Placement is decided by a deterministic seeded hash of the element --
**not** Python's ``hash()``, which is randomized per process
(``PYTHONHASHSEED``) and would scatter the same element to different
shards across workers and across a crash/recover boundary.  Integers go
through a splitmix64-style mixer, strings/bytes through CRC32, tuples
combine their fields, and anything else hashes its canonical codec
encoding, so ownership is a pure function of ``(value, shards, seed)``.

Splitting is structural:

* a :class:`~repro.data.bag.Bag` splits element-wise (each element's
  multiplicity goes wholly to its owner);
* a map whose values are themselves group-valued containers (the
  ``Map Int (Bag word)`` corpus of Fig. 5's MapReduce skeleton) splits
  each entry's *value* recursively, keeping the key on every shard that
  receives a non-zero slice.  This is what makes the per-shard partial
  outputs of ``histogram``/``wordcount`` disjoint: shard ``i`` only
  ever sees words it owns, so its partial histogram holds only those
  words and the merged view is a disjoint union;
* a map with scalar values routes whole entries by key;
* a scalar lands on shard 0 (with the group zero elsewhere) -- the
  degenerate but still correct split.
"""

from __future__ import annotations

import zlib
from typing import Any, List, Optional, Sequence, Tuple

from repro.data.bag import Bag
from repro.data.change_values import GroupChange, Replace
from repro.data.group import (
    AbelianGroup,
    BAG_GROUP,
    FLOAT_ADD_GROUP,
    INT_ADD_GROUP,
    map_group,
    pair_group,
)
from repro.data.pmap import PMap
from repro.parallel.errors import ParallelError

_MASK64 = (1 << 64) - 1


def _mix64(value: int) -> int:
    """The splitmix64 finalizer: a cheap, well-distributed int mixer."""
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & _MASK64
    return value ^ (value >> 31)


def infer_group_for_value(value: Any) -> AbelianGroup:
    """The abelian group a value structurally belongs to.

    Used to split inputs (and merge outputs) when the caller does not
    name groups explicitly; raises :class:`ParallelError` for values
    with no canonical group.
    """
    if isinstance(value, Bag):
        return BAG_GROUP
    if isinstance(value, PMap):
        for inner in value.values():
            return map_group(infer_group_for_value(inner))
        return map_group(INT_ADD_GROUP)
    if isinstance(value, bool):
        raise ParallelError("booleans do not form a canonical abelian group")
    if isinstance(value, int):
        return INT_ADD_GROUP
    if isinstance(value, float):
        return FLOAT_ADD_GROUP
    if isinstance(value, tuple) and len(value) == 2:
        return pair_group(
            infer_group_for_value(value[0]), infer_group_for_value(value[1])
        )
    raise ParallelError(
        f"cannot infer an abelian group for {type(value).__name__} values; "
        "pass the group explicitly"
    )


def zero_change(group: AbelianGroup) -> GroupChange:
    """The nil change of ``group``'s induced change structure."""
    return GroupChange(group, group.zero)


class Partitioner:
    """Split group values and changes across ``shards`` by element owner."""

    def __init__(self, shards: int, seed: int = 0):
        if shards < 1:
            raise ParallelError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.seed = int(seed)
        self._int_salt = _mix64((self.seed * 0x9E3779B97F4A7C15 + 1) & _MASK64)
        self._crc_salt = zlib.crc32(
            self.seed.to_bytes(8, "little", signed=True)
        )

    # -- ownership ---------------------------------------------------------

    def stable_hash(self, element: Any) -> int:
        """A process-independent 64-bit hash of ``element``."""
        if isinstance(element, bool):
            return _mix64(self._int_salt ^ (2 if element else 3))
        if isinstance(element, int):
            return _mix64(self._int_salt ^ (element & _MASK64))
        if isinstance(element, str):
            return zlib.crc32(element.encode("utf-8"), self._crc_salt)
        if isinstance(element, bytes):
            return zlib.crc32(element, self._crc_salt)
        if isinstance(element, tuple):
            combined = self._int_salt ^ len(element)
            for field in element:
                combined = _mix64(combined ^ self.stable_hash(field))
            return combined
        from repro.persistence.codec import canonical_json, encode_value

        return zlib.crc32(
            canonical_json(encode_value(element)).encode("utf-8"),
            self._crc_salt,
        )

    def owner(self, element: Any) -> int:
        """The shard that owns ``element``."""
        return self.stable_hash(element) % self.shards

    # -- value splitting ---------------------------------------------------

    def split_value(self, value: Any, group: AbelianGroup) -> List[Any]:
        """Split ``value`` into per-shard slices with ``⊕``-sum ``value``."""
        if self.shards == 1:
            return [value]
        if group.name == "BagGroup":
            return self._split_bag(value)
        if group.name == "MapGroup":
            return self._split_map(value, group.args[0])
        slices = [group.zero] * self.shards
        slices[0] = value
        return slices

    def _split_bag(self, bag: Bag) -> List[Bag]:
        if not isinstance(bag, Bag):
            raise ParallelError(
                f"expected a Bag for a BagGroup input, got {type(bag).__name__}"
            )
        buckets: List[dict] = [{} for _ in range(self.shards)]
        owner = self.owner
        for element, count in bag.counts():
            buckets[owner(element)][element] = count
        return [Bag(bucket) for bucket in buckets]

    def _split_map(self, mapping: PMap, inner: AbelianGroup) -> List[PMap]:
        if not isinstance(mapping, PMap):
            raise ParallelError(
                f"expected a PMap for a MapGroup input, "
                f"got {type(mapping).__name__}"
            )
        buckets: List[dict] = [{} for _ in range(self.shards)]
        if inner.name in ("BagGroup", "MapGroup"):
            # Container-valued entries split by their *elements*: the key
            # stays on every shard that receives a non-zero slice.
            is_zero = inner.is_zero
            for key, value in mapping.items():
                for shard, piece in enumerate(self.split_value(value, inner)):
                    if not is_zero(piece):
                        buckets[shard][key] = piece
        else:
            # Scalar-valued entries route whole by key.
            owner = self.owner
            for key, value in mapping.items():
                buckets[owner(key)][key] = value
        return [PMap(bucket) for bucket in buckets]

    # -- change splitting --------------------------------------------------

    def split_change(
        self, change: Any, group: AbelianGroup
    ) -> Tuple[List[Optional[Any]], List[int]]:
        """Split one change into per-shard sub-changes.

        Returns ``(slices, touched)``: ``slices[shard]`` is the shard's
        sub-change or ``None`` where the change does not reach the
        shard, and ``touched`` lists the shards with a non-None slice.
        """
        if self.shards == 1:
            return [change], [0]
        if isinstance(change, GroupChange):
            slices: List[Optional[Any]] = [None] * self.shards
            touched: List[int] = []
            is_zero = change.group.is_zero
            for shard, piece in enumerate(
                self.split_value(change.delta, change.group)
            ):
                if not is_zero(piece):
                    slices[shard] = GroupChange(change.group, piece)
                    touched.append(shard)
            return slices, touched
        if isinstance(change, Replace):
            # A replacement re-partitions the whole input: every shard
            # adopts its slice of the new value.
            pieces = self.split_value(change.value, group)
            return [Replace(piece) for piece in pieces], list(
                range(self.shards)
            )
        raise ParallelError(
            f"cannot route change {type(change).__name__} across shards; "
            "sharded inputs take group changes or replacements"
        )

    def describe(self) -> dict:
        """A JSON-ready description (lands in the shard manifest)."""
        return {
            "kind": "stable-hash",
            "shards": self.shards,
            "seed": self.seed,
        }


__all__ = [
    "Partitioner",
    "infer_group_for_value",
    "zero_change",
]
