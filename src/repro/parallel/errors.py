"""The error type of the sharding layer."""

from __future__ import annotations

from repro.errors import ReproError


class ParallelError(ReproError, ValueError):
    """A value, change, or configuration the sharding layer cannot
    partition or execute."""


__all__ = ["ParallelError"]
