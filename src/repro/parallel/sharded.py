"""The engine-shaped front over N per-shard engines.

:class:`ShardedIncrementalProgram` quacks like
:class:`~repro.incremental.engine.IncrementalProgram` -- ``initialize``
/ ``step`` / ``step_batch`` / ``recompute`` / ``verify`` / ``rebase``
and the inspection surface -- but executes over a partition:

* ``initialize`` splits every input with the seeded
  :class:`~repro.parallel.partitioner.Partitioner` and runs the
  compiled base fold once per shard (§4.4's
  ``foldBag f (b₁ ⊎ b₂) = foldBag f b₁ ⊕ foldBag f b₂`` guarantees the
  per-shard partials sum to the whole);
* ``step`` routes each change row to the shards that own the affected
  elements -- almost always exactly one -- and applies the per-shard
  derivative there.  The step therefore pays ``⊕`` against a partial
  output ~1/N the size of the combined one, which is where partitioning
  wins even on a single core (the per-step cost is dominated by the
  output-map copy in ``⊕`` at large output sizes);
* ``output`` materializes the ⊕-merge of the partials on demand and
  caches it until the next write -- partials live with their shards,
  exactly like MapReduce reducer outputs.

Per-phase wall time (partition, dispatch, worker compute, merge) is
recorded in the observability registry under ``parallel.phase.*`` so
the dashboard drill-down shows where parallel time goes.

With ``durable_directory`` set, every shard engine is wrapped in its own
:class:`~repro.runtime.durability.DurabilityLayer` journaling into
``journal-<shard>/`` under the root, and the root's ``shards.json``
manifest records the acknowledged per-shard step vector (the consistent
cut) after every committed write.  Recovery
(:func:`repro.parallel.recovery.recover_sharded`) replays each shard
journal *up to* the cut, so no shard resurfaces ahead of what the
router acknowledged.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.data.group import AbelianGroup
from repro.lang.infer import infer_type
from repro.lang.pretty import pretty
from repro.lang.terms import Term
from repro.lang.types import Type, uncurry_fun_type
from repro.observability import get_observability
from repro.observability import metrics as _metrics
from repro.parallel.errors import ParallelError
from repro.parallel.executors import (
    EXECUTORS,
    InProcessExecutor,
    ProcessExecutor,
)
from repro.parallel.partitioner import (
    Partitioner,
    infer_group_for_value,
    zero_change,
)
from repro.plugins.registry import Registry

_STATE = _metrics.STATE

#: File name of the root manifest tying per-shard journals together.
SHARD_MANIFEST = "shards.json"


def shard_journal_directory(root: str, shard: int) -> str:
    """``journal-<shard>/`` under the sharded-state root."""
    return os.path.join(root, f"journal-{shard}")


def _infer_output_group(outputs: Sequence[Any]) -> AbelianGroup:
    """Infer the ⊕-merge group from the per-shard partial outputs,
    preferring a shard whose output is structurally informative (a
    non-empty container)."""
    from repro.data.pmap import PMap

    fallback: Optional[AbelianGroup] = None
    last_error: Optional[Exception] = None
    for output in outputs:
        try:
            group = infer_group_for_value(output)
        except ParallelError as error:
            last_error = error
            continue
        if not (isinstance(output, PMap) and output.is_empty()):
            return group
        fallback = fallback or group
    if fallback is not None:
        return fallback
    raise ParallelError(
        "cannot infer the output group for ⊕-merging shard partials; "
        "pass output_group explicitly"
    ) from last_error


class ShardedIncrementalProgram:
    """N per-shard incremental programs behind one engine-shaped front."""

    def __init__(
        self,
        term: Term,
        registry: Registry,
        shards: int,
        seed: int = 0,
        backend: str = "compiled",
        strict: bool = False,
        engine: str = "incremental",
        executor: str = "inprocess",
        durable_directory: Optional[str] = None,
        durability_policy: Optional[Any] = None,
        output_group: Optional[AbelianGroup] = None,
        input_groups: Optional[Sequence[AbelianGroup]] = None,
    ):
        if executor not in EXECUTORS:
            raise ParallelError(
                f"unknown executor {executor!r} (available: "
                f"{', '.join(EXECUTORS)})"
            )
        if engine not in ("incremental", "caching"):
            raise ParallelError(
                f"unknown engine {engine!r} "
                "(available: incremental, caching)"
            )
        self.registry = registry
        self.backend = backend
        self.strict = strict
        self.engine_kind = engine
        self.executor_kind = executor
        term, program_type = infer_type(term)
        self.term = term
        self.program_type: Optional[Type] = program_type
        self.arity = len(uncurry_fun_type(program_type)[0])
        if self.arity == 0:
            raise ParallelError("program must take at least one input")
        self.source = pretty(term)
        self.partitioner = Partitioner(shards, seed=seed)
        self.durable_directory = durable_directory
        self.durability_policy = durability_policy
        self._output_group = output_group
        self._input_groups: Optional[List[AbelianGroup]] = (
            list(input_groups) if input_groups is not None else None
        )
        self._executor = self._build_executor()
        self._merged_output: Any = None
        self._merged_valid = False
        self._initialized = False
        self._steps = 0
        self.coalesced_changes = 0
        self.routed_changes = 0
        self._last_touched: Optional[int] = None

    @property
    def shards(self) -> int:
        return self.partitioner.shards

    @property
    def seed(self) -> int:
        return self.partitioner.seed

    def _build_executor(self) -> Any:
        if self.executor_kind == "process":
            if self.durable_directory is not None:
                raise ParallelError(
                    "per-shard durability requires the in-process executor"
                )
            return ProcessExecutor(
                self.shards,
                self.source,
                backend=self.backend,
                strict=self.strict,
                caching=self.engine_kind == "caching",
            )
        programs = [
            self._build_shard_program(shard) for shard in range(self.shards)
        ]
        return InProcessExecutor(programs)

    def _build_shard_program(self, shard: int) -> Any:
        if self.engine_kind == "caching":
            from repro.incremental.caching import CachingIncrementalProgram

            program: Any = CachingIncrementalProgram(self.term, self.registry)
        else:
            from repro.incremental.engine import IncrementalProgram

            program = IncrementalProgram(
                self.term,
                self.registry,
                strict=self.strict,
                backend=self.backend,
            )
        if self.durable_directory is not None:
            from repro.runtime.durability import DurabilityLayer

            program = DurabilityLayer(
                program,
                shard_journal_directory(self.durable_directory, shard),
                policy=self.durability_policy,
                source=self.source,
                meta={
                    "shard": shard,
                    "shards": self.shards,
                    "partitioner_seed": self.seed,
                },
            )
        return program

    # -- recovery re-attachment --------------------------------------------

    @classmethod
    def _attach(
        cls,
        programs: Sequence[Any],
        term: Term,
        registry: Registry,
        seed: int,
        steps: int,
        backend: str = "compiled",
        durable_directory: Optional[str] = None,
        durability_policy: Optional[Any] = None,
        output_group: Optional[AbelianGroup] = None,
        input_groups: Optional[Sequence[AbelianGroup]] = None,
    ) -> "ShardedIncrementalProgram":
        """Wrap already-recovered per-shard programs (no re-initialize)."""
        sharded = cls.__new__(cls)
        sharded.registry = registry
        sharded.backend = backend
        sharded.strict = False
        sharded.engine_kind = "incremental"
        sharded.executor_kind = "inprocess"
        term, program_type = infer_type(term)
        sharded.term = term
        sharded.program_type = program_type
        sharded.arity = len(uncurry_fun_type(program_type)[0])
        sharded.source = pretty(term)
        sharded.partitioner = Partitioner(len(programs), seed=seed)
        sharded.durable_directory = durable_directory
        sharded.durability_policy = durability_policy
        sharded._output_group = output_group
        sharded._input_groups = (
            list(input_groups) if input_groups is not None else None
        )
        sharded._executor = InProcessExecutor(programs)
        sharded._merged_output = None
        sharded._merged_valid = False
        sharded._initialized = True
        sharded._steps = steps
        sharded.coalesced_changes = 0
        sharded.routed_changes = 0
        sharded._last_touched = None
        if sharded._input_groups is None:
            sharded._infer_input_groups_from_shards()
        if sharded._output_group is None:
            sharded._output_group = _infer_output_group(
                sharded._executor.outputs()
            )
        return sharded

    def _infer_input_groups_from_shards(self) -> None:
        """Infer input groups from recovered shard inputs, preferring a
        shard whose slice of each input is structurally informative."""
        per_shard = [
            list(self._executor.current_inputs(shard))
            for shard in range(self.shards)
        ]
        groups: List[AbelianGroup] = []
        for position in range(self.arity):
            groups.append(
                _infer_output_group(
                    [inputs[position] for inputs in per_shard]
                )
            )
        self._input_groups = groups

    # -- lifecycle ---------------------------------------------------------

    def initialize(self, *inputs: Any) -> Any:
        if len(inputs) != self.arity:
            raise ValueError(
                f"expected {self.arity} inputs, got {len(inputs)}"
            )
        if self._input_groups is None:
            self._input_groups = [
                infer_group_for_value(value) for value in inputs
            ]
        began = time.perf_counter()
        partitions = [
            self.partitioner.split_value(value, group)
            for value, group in zip(inputs, self._input_groups)
        ]
        shard_inputs = [
            tuple(partition[shard] for partition in partitions)
            for shard in range(self.shards)
        ]
        partitioned = time.perf_counter()
        outputs = self._executor.initialize(shard_inputs)
        computed = time.perf_counter()
        if self._output_group is None:
            self._output_group = _infer_output_group(outputs)
        self._merged_output = self._output_group.fold(outputs)
        merged = time.perf_counter()
        self._merged_valid = True
        self._initialized = True
        self._steps = 0
        self._write_shard_manifest()
        if _STATE.on:
            metrics = get_observability().metrics
            metrics.gauge("parallel.shards").set(self.shards)
            metrics.histogram("parallel.phase.partition_wall_time_s").record(
                partitioned - began
            )
            metrics.histogram("parallel.phase.compute_wall_time_s").record(
                computed - partitioned
            )
            metrics.histogram("parallel.phase.merge_wall_time_s").record(
                merged - computed
            )
        return self._merged_output

    def _require_initialized(self) -> None:
        if not self._initialized:
            raise RuntimeError("call initialize() before stepping")

    def _split_row(
        self, changes: Sequence[Any]
    ) -> Tuple[Dict[int, List[Any]], List[int]]:
        """Split one change row into per-shard rows (zero-filled for the
        inputs a touched shard receives no slice of)."""
        assert self._input_groups is not None
        slices_per_input = []
        touched: set = set()
        for change, group in zip(changes, self._input_groups):
            slices, owners = self.partitioner.split_change(change, group)
            slices_per_input.append(slices)
            touched.update(owners)
        rows: Dict[int, List[Any]] = {}
        for shard in sorted(touched):
            rows[shard] = [
                slices[shard]
                if slices[shard] is not None
                else zero_change(group)
                for slices, group in zip(
                    slices_per_input, self._input_groups
                )
            ]
        return rows, sorted(touched)

    def step(self, *changes: Any) -> Any:
        """Route one change row to its owning shards and step them."""
        self._require_initialized()
        if len(changes) != self.arity:
            raise ValueError(
                f"expected {self.arity} changes, got {len(changes)}"
            )
        began = time.perf_counter()
        rows, touched = self._split_row(changes)
        partitioned = time.perf_counter()
        compute = 0.0
        for shard in touched:
            shard_began = time.perf_counter()
            self._executor.step(shard, rows[shard])
            compute += time.perf_counter() - shard_began
            self._last_touched = shard
        dispatched = time.perf_counter()
        if touched:
            self._merged_valid = False
        self._steps += 1
        self.routed_changes += len(touched)
        self._write_shard_manifest()
        if _STATE.on:
            metrics = get_observability().metrics
            metrics.counter("parallel.steps").inc()
            metrics.counter("parallel.routed_changes").inc(len(touched))
            metrics.histogram("parallel.phase.partition_wall_time_s").record(
                partitioned - began
            )
            metrics.histogram("parallel.phase.compute_wall_time_s").record(
                compute
            )
            metrics.histogram("parallel.phase.dispatch_wall_time_s").record(
                max(dispatched - partitioned - compute, 0.0)
            )
        # Deliberately does NOT force the ⊕-merge: partials stay with
        # their shards (the MapReduce shape) and ``output`` materializes
        # the combined view on read.  Returning the merge here would put
        # an O(|output| · N) fold on every routed step and erase the
        # win sharding buys.
        return None

    def step_batch(
        self, batch: Sequence[Sequence[Any]], coalesce: bool = True
    ) -> Any:
        """Route a burst of rows, delivering each shard its sub-batch in
        one call (per-shard coalescing applies downstream)."""
        self._require_initialized()
        rows = [tuple(row) for row in batch]
        for row in rows:
            if len(row) != self.arity:
                raise ValueError(
                    f"expected {self.arity} changes per row, got {len(row)}"
                )
        if not rows:
            return self.output
        began = time.perf_counter()
        shard_batches: Dict[int, List[List[Any]]] = {}
        routed = 0
        for row in rows:
            split, touched = self._split_row(row)
            routed += len(touched)
            for shard, shard_row in split.items():
                shard_batches.setdefault(shard, []).append(shard_row)
        partitioned = time.perf_counter()
        compute = 0.0
        before = sum(
            self._executor.coalesced_changes(shard) for shard in shard_batches
        )
        for shard, shard_rows in shard_batches.items():
            shard_began = time.perf_counter()
            self._executor.step_batch(shard, shard_rows, coalesce=coalesce)
            compute += time.perf_counter() - shard_began
            self._last_touched = shard
        after = sum(
            self._executor.coalesced_changes(shard) for shard in shard_batches
        )
        self.coalesced_changes += after - before
        dispatched = time.perf_counter()
        if shard_batches:
            self._merged_valid = False
        self._steps += 1 if coalesce else len(rows)
        self.routed_changes += routed
        self._write_shard_manifest()
        if _STATE.on:
            metrics = get_observability().metrics
            metrics.counter("parallel.steps").inc()
            metrics.counter("parallel.routed_changes").inc(routed)
            metrics.histogram("parallel.phase.partition_wall_time_s").record(
                partitioned - began
            )
            metrics.histogram("parallel.phase.compute_wall_time_s").record(
                compute
            )
            metrics.histogram("parallel.phase.dispatch_wall_time_s").record(
                max(dispatched - partitioned - compute, 0.0)
            )
        # Like ``step``: the merged view is materialized on read.
        return None

    def rebase(self, *changes: Any) -> Any:
        """⊕-apply ``changes`` and recompute, on the owning shards only."""
        self._require_initialized()
        if len(changes) != self.arity:
            raise ValueError(
                f"expected {self.arity} changes, got {len(changes)}"
            )
        rows, touched = self._split_row(changes)
        for shard in touched:
            self._executor.rebase(shard, rows[shard])
            self._last_touched = shard
        if touched:
            self._merged_valid = False
        self._steps += 1
        self.routed_changes += len(touched)
        self._write_shard_manifest()
        return self.output

    # -- inspection --------------------------------------------------------

    @property
    def output(self) -> Any:
        """The ⊕-merge of the per-shard partial outputs (cached between
        writes; partials stay with their shards)."""
        self._require_initialized()
        if not self._merged_valid:
            began = time.perf_counter()
            assert self._output_group is not None
            self._merged_output = self._output_group.fold(
                self._executor.outputs()
            )
            self._merged_valid = True
            if _STATE.on:
                get_observability().metrics.histogram(
                    "parallel.phase.merge_wall_time_s"
                ).record(time.perf_counter() - began)
        return self._merged_output

    @property
    def steps(self) -> int:
        return self._steps

    @property
    def last_step_span(self) -> Optional[Any]:
        if self._last_touched is None:
            return None
        return self._executor.last_step_span(self._last_touched)

    def shard_outputs(self) -> List[Any]:
        """The raw per-shard partials (the pre-merge MapReduce view)."""
        self._require_initialized()
        return self._executor.outputs()

    def shard_steps(self) -> List[int]:
        """Per-shard committed step counts (the consistent-cut vector)."""
        return [
            self._executor.steps(shard) for shard in range(self.shards)
        ]

    def current_inputs(self) -> Sequence[Any]:
        """The ⊕-merge, per input position, of the shard slices."""
        self._require_initialized()
        assert self._input_groups is not None
        per_shard = [
            list(self._executor.current_inputs(shard))
            for shard in range(self.shards)
        ]
        return [
            group.fold(inputs[position] for inputs in per_shard)
            for position, group in enumerate(self._input_groups)
        ]

    def recompute(self) -> Any:
        """⊕-merge of the per-shard from-scratch recomputations."""
        self._require_initialized()
        assert self._output_group is not None
        return self._output_group.fold(
            self._executor.recompute(shard) for shard in range(self.shards)
        )

    def verify(self) -> bool:
        """Every shard passes Eq. 1 locally and the merged partials
        equal the merged recomputation."""
        self._require_initialized()
        for shard in range(self.shards):
            if not self._executor.verify(shard):
                return False
        return self.output == self.recompute()

    def resync(self) -> Any:
        self._require_initialized()
        for shard in range(self.shards):
            self._executor.resync(shard)
        self._merged_valid = False
        return self.output

    def fast_forward(self, steps: int) -> None:
        if steps < 0:
            raise ValueError("steps must be >= 0")
        self._steps = steps

    # -- durability --------------------------------------------------------

    def _write_shard_manifest(self) -> None:
        """Atomically record the acknowledged consistent cut."""
        if self.durable_directory is None:
            return
        from repro.persistence.snapshot import _atomic_write

        payload = {
            "type": "shard-manifest",
            "version": 1,
            "shards": self.shards,
            "partitioner": self.partitioner.describe(),
            "program": self.source,
            "backend": self.backend,
            "global_steps": self._steps,
            "cut": self.shard_steps(),
        }
        _atomic_write(
            self.durable_directory,
            SHARD_MANIFEST,
            json.dumps(payload, sort_keys=True, indent=2) + "\n",
        )

    def snapshot_state(self) -> Any:
        return {
            "layer": "sharded-engine",
            "shards": self.shards,
            "seed": self.seed,
            "executor": self.executor_kind,
            "steps": self._steps,
            "routed_changes": self.routed_changes,
            "cut": self.shard_steps() if self._initialized else None,
            "backend": self.backend,
        }

    def close(self) -> None:
        self._executor.close()


__all__ = [
    "SHARD_MANIFEST",
    "ShardedIncrementalProgram",
    "shard_journal_directory",
]
