"""Crash recovery for partitioned journals.

A sharded durable run lays its state out as::

    root/
      shards.json        -- the consistent-cut manifest (atomic rewrite)
      journal-0/         -- an ordinary durable directory (journal +
      journal-1/            snapshots) for shard 0, 1, ...
      ...

Each routed step is journaled by exactly one shard's
:class:`~repro.runtime.durability.DurabilityLayer` *before* the root
manifest acknowledges it, so after a crash a shard's journal may hold a
record the router never acknowledged.  :func:`recover_sharded` replays
every shard through the ordinary recovery ladder **capped at the
manifest's cut** (``through_step``): unacknowledged records are trimmed
from both the recovered state and the on-disk log, so no shard comes
back ahead of the manifest and the reassembled state is a consistent
cut of the routed change stream.  (Shard journals are independent --
each routed change touches one shard -- so any per-shard prefix vector
is a consistent global state; the cut makes the *acknowledged* prefix
the one we adopt.)
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import RecoveryError
from repro.lang.parser import parse
from repro.persistence.recovery import RecoveryReport, recover
from repro.parallel.sharded import (
    SHARD_MANIFEST,
    ShardedIncrementalProgram,
    shard_journal_directory,
)


@dataclass
class ShardedRecoveryReport:
    """The root-level view plus every shard's own recovery report."""

    directory: str
    shards: int
    seed: int
    global_steps: int
    cut: List[int]
    shard_reports: List[RecoveryReport] = field(default_factory=list)

    @property
    def trimmed_steps(self) -> int:
        return sum(report.trimmed_steps for report in self.shard_reports)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "sharded-recovery",
            "directory": self.directory,
            "shards": self.shards,
            "seed": self.seed,
            "global_steps": self.global_steps,
            "cut": self.cut,
            "trimmed_steps": self.trimmed_steps,
            "shard_reports": [
                report.to_dict() for report in self.shard_reports
            ],
        }


@dataclass
class ShardedRecoveryResult:
    program: ShardedIncrementalProgram
    report: ShardedRecoveryReport

    @property
    def output(self) -> Any:
        return self.program.output


def load_shard_manifest(directory: str) -> Dict[str, Any]:
    """Read and validate the root ``shards.json`` manifest."""
    path = os.path.join(directory, SHARD_MANIFEST)
    if not os.path.exists(path):
        raise RecoveryError(f"no shard manifest at {path!r}")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, ValueError) as error:
        raise RecoveryError(
            f"cannot read shard manifest {path!r}: {error}"
        ) from error
    if manifest.get("type") != "shard-manifest":
        raise RecoveryError(f"{path!r} is not a shard manifest")
    shards = manifest.get("shards")
    cut = manifest.get("cut")
    if not isinstance(shards, int) or shards < 1:
        raise RecoveryError(f"shard manifest has invalid shard count {shards!r}")
    if not isinstance(cut, list) or len(cut) != shards:
        raise RecoveryError(
            f"shard manifest cut {cut!r} does not cover {shards} shards"
        )
    return manifest


def recover_sharded(
    directory: str,
    registry: Any = None,
    policy: Optional[Any] = None,
    resilience: Optional[Any] = None,
    verify: Optional[bool] = None,
) -> ShardedRecoveryResult:
    """Reassemble a sharded durable run as of its acknowledged cut."""
    if registry is None:
        from repro.plugins.registry import standard_registry

        registry = standard_registry()
    manifest = load_shard_manifest(directory)
    shards = int(manifest["shards"])
    cut = [int(value) for value in manifest["cut"]]
    seed = int(manifest.get("partitioner", {}).get("seed", 0))
    report = ShardedRecoveryReport(
        directory=directory,
        shards=shards,
        seed=seed,
        global_steps=int(manifest.get("global_steps", 0)),
        cut=cut,
    )
    programs: List[Any] = []
    for shard in range(shards):
        result = recover(
            shard_journal_directory(directory, shard),
            registry,
            policy=policy,
            resilience=resilience,
            verify=verify,
            through_step=cut[shard],
        )
        report.shard_reports.append(result.report)
        programs.append(result.program)
    source = manifest.get("program")
    if not isinstance(source, str):
        raise RecoveryError("shard manifest carries no program source")
    term = parse(source, registry)
    program = ShardedIncrementalProgram._attach(
        programs,
        term,
        registry,
        seed=seed,
        steps=report.global_steps,
        backend=str(manifest.get("backend", "compiled")),
        durable_directory=directory,
    )
    return ShardedRecoveryResult(program=program, report=report)


__all__ = [
    "ShardedRecoveryReport",
    "ShardedRecoveryResult",
    "load_shard_manifest",
    "recover_sharded",
]
