"""First-class abelian groups.

The paper (Sec. 2.1 and Fig. 6) uses abelian groups ``(G, •, inverse, zero)``
in two roles: every abelian group induces a change structure, and the
``foldBag`` / ``foldMap`` primitives take a group argument describing how to
combine per-element results.  Groups here are ordinary immutable Python
values so they can flow through the object language as first-class data.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable


class AbelianGroup:
    """An abelian group ``(carrier, merge, inverse, zero)``.

    ``merge`` must be commutative and associative with identity ``zero``
    and ``inverse`` producing inverses; these laws are checked by the
    property tests in ``tests/changes/test_group.py`` rather than enforced
    at construction.

    Groups compare structurally by name and argument groups so that, e.g.,
    ``map_group(INT_ADD_GROUP)`` built twice is a single logical group.
    """

    __slots__ = ("name", "merge", "inverse", "zero", "_args", "_scale", "_fold")

    def __init__(
        self,
        name: str,
        merge: Callable[[Any, Any], Any],
        inverse: Callable[[Any], Any],
        zero: Any,
        args: tuple = (),
        scale: Callable[[Any, int], Any] | None = None,
        fold: Callable[[Iterable[Any]], Any] | None = None,
    ):
        self.name = name
        self.merge = merge
        self.inverse = inverse
        self.zero = zero
        self._args = args
        self._scale = scale
        self._fold = fold

    @property
    def args(self) -> tuple:
        """Structural arguments (component groups) of a derived group."""
        return self._args

    def scale(self, value: Any, count: int) -> Any:
        """``value`` merged with itself ``count`` times (negatives invert).

        Uses the group-specific fast path when available, falling back to
        doubling (O(log count) merges).
        """
        if self._scale is not None:
            return self._scale(value, count)
        if count == 0:
            return self.zero
        if count < 0:
            return self.scale(self.inverse(value), -count)
        result = self.zero
        power = value
        remaining = count
        while remaining:
            if remaining & 1:
                result = self.merge(result, power)
            remaining >>= 1
            if remaining:
                power = self.merge(power, power)
        return result

    def fold(self, values: Iterable[Any]) -> Any:
        """Merge ``values`` into one group element.

        Associativity/commutativity make the result independent of order,
        which lets container groups (bags, maps) accumulate into one
        mutable buffer instead of copying the partial result per merge —
        the difference between O(n²) and O(n) for large base folds.
        """
        if self._fold is not None:
            return self._fold(values)
        result = self.zero
        for value in values:
            result = self.merge(result, value)
        return result

    def is_zero(self, value: Any) -> bool:
        """True if ``value`` equals the group identity."""
        return value == self.zero

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AbelianGroup):
            return NotImplemented
        return self.name == other.name and self._args == other._args

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash((self.name, self._args))

    def __repr__(self) -> str:
        if self._args:
            inner = ", ".join(repr(arg) for arg in self._args)
            return f"{self.name}({inner})"
        return self.name


INT_ADD_GROUP = AbelianGroup(
    "IntAdd",
    merge=lambda a, b: a + b,
    inverse=lambda a: -a,
    zero=0,
    scale=lambda a, n: a * n,
)
"""The additive group of integers, ``G+ = (Z, +, -, 0)`` of Sec. 2.1."""

INT_MUL_GROUP = AbelianGroup(
    "RatMul",
    merge=lambda a, b: a * b,
    inverse=lambda a: 1 / a if not isinstance(a, int) or a not in (1, -1) else a,
    zero=1,
)
"""The multiplicative group of (nonzero) rationals; the paper mentions
"multiply floating-point numbers" as an alternative ``foldBag`` group."""

FLOAT_ADD_GROUP = AbelianGroup(
    "FloatAdd",
    merge=lambda a, b: a + b,
    inverse=lambda a: -a,
    zero=0.0,
    scale=lambda a, n: a * n,
)
"""The additive group of floats."""


def _bag_group() -> AbelianGroup:
    from repro.data.bag import Bag

    def fold(values) -> Bag:
        counts: dict = {}
        get = counts.get
        for bag in values:
            for element, count in bag.counts():
                new_count = get(element, 0) + count
                if new_count:
                    counts[element] = new_count
                elif element in counts:
                    del counts[element]
        return Bag(counts)

    return AbelianGroup(
        "BagGroup",
        merge=lambda a, b: a.merge(b),
        inverse=lambda a: a.negate(),
        zero=Bag.empty(),
        scale=lambda a, n: Bag(
            {element: count * n for element, count in a.counts()}
        ),
        fold=fold,
    )


BAG_GROUP = _bag_group()
"""``groupOnBags``: bags with signed multiplicities under ``merge``."""


def map_group(value_group: AbelianGroup) -> AbelianGroup:
    """``groupOnMaps``: lift a group on values to maps, merging pointwise
    and dropping entries whose merged value is the inner zero (Fig. 6)."""
    from repro.data.pmap import PMap

    inner_merge = value_group.merge
    inner_is_zero = value_group.is_zero

    def fold(values) -> PMap:
        entries: dict = {}
        for mapping in values:
            for key, value in mapping.items():
                if key in entries:
                    entries[key] = inner_merge(entries[key], value)
                else:
                    entries[key] = value
        return PMap(
            {
                key: value
                for key, value in entries.items()
                if not inner_is_zero(value)
            }
        )

    return AbelianGroup(
        f"MapGroup",
        merge=lambda a, b: a.merged_with(b, value_group),
        inverse=lambda a: a.map_values(value_group.inverse),
        zero=PMap.empty(),
        args=(value_group,),
        fold=fold,
    )


def pair_group(left: AbelianGroup, right: AbelianGroup) -> AbelianGroup:
    """The product group: componentwise merge/inverse, pair of zeros."""
    return AbelianGroup(
        "PairGroup",
        merge=lambda a, b: (left.merge(a[0], b[0]), right.merge(a[1], b[1])),
        inverse=lambda a: (left.inverse(a[0]), right.inverse(a[1])),
        zero=(left.zero, right.zero),
        args=(left, right),
    )


# Backwards-friendly aliases used by the plugin layer.
MapGroup = map_group
PairGroup = pair_group
