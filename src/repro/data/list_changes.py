"""Structural changes for lists: index-based edit scripts.

Lists are the paper's example of a type with *fewer* algebraic properties
than bags -- concatenation is not commutative and has no inverses, so the
abelian-group construction does not apply and changes must speak about
*positions* (Sec. 6: "even lists can benefit from special support",
citing Maier & Odersky's incremental lists).

A list change is a script of edits, applied left to right:

* ``Insert(index, value)`` -- insert ``value`` before ``index``;
* ``Delete(index)``        -- remove the element at ``index``;
* ``Update(index, change)`` -- apply an element change at ``index``.

Lists themselves are Python tuples (immutable, hashable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from repro.data.change_values import Change, oplus_value


@dataclass(frozen=True)
class Insert:
    index: int
    value: Any

    def __repr__(self) -> str:
        return f"Insert({self.index}, {self.value!r})"


@dataclass(frozen=True)
class Delete:
    index: int

    def __repr__(self) -> str:
        return f"Delete({self.index})"


@dataclass(frozen=True)
class Update:
    index: int
    change: Any

    def __repr__(self) -> str:
        return f"Update({self.index}, {self.change!r})"


Edit = Any  # Insert | Delete | Update


class ListChange(Change):
    """An edit script over a list value."""

    __slots__ = ("edits",)

    def __init__(self, *edits: Edit):
        self.edits: Tuple[Edit, ...] = tuple(edits)

    @staticmethod
    def nil() -> "ListChange":
        return _NIL

    def is_nil(self) -> bool:
        return not self.edits

    def apply_to(self, value: Any) -> Any:
        if not isinstance(value, tuple):
            raise TypeError(f"list change applied to non-list: {value!r}")
        items = list(value)
        for edit in self.edits:
            if isinstance(edit, Insert):
                if not 0 <= edit.index <= len(items):
                    raise IndexError(
                        f"insert at {edit.index} out of range 0..{len(items)}"
                    )
                items.insert(edit.index, edit.value)
            elif isinstance(edit, Delete):
                if not 0 <= edit.index < len(items):
                    raise IndexError(
                        f"delete at {edit.index} out of range"
                    )
                del items[edit.index]
            elif isinstance(edit, Update):
                if not 0 <= edit.index < len(items):
                    raise IndexError(
                        f"update at {edit.index} out of range"
                    )
                items[edit.index] = oplus_value(items[edit.index], edit.change)
            else:
                raise TypeError(f"unknown list edit: {edit!r}")
        return tuple(items)

    def then(self, other: "ListChange") -> "ListChange":
        """Sequential composition (apply ``self`` first)."""
        return ListChange(*(self.edits + other.edits))

    def compose_with(self, other: Any) -> "ListChange | None":
        """Hook for ``repro.data.change_values.compose_changes``."""
        if isinstance(other, ListChange):
            return self.then(other)
        return None

    def shifted(self, offset: int) -> "ListChange":
        """The same edits, displaced by ``offset`` positions (used by
        ``append``'s derivative to route right-list edits)."""
        shifted_edits = []
        for edit in self.edits:
            if isinstance(edit, Insert):
                shifted_edits.append(Insert(edit.index + offset, edit.value))
            elif isinstance(edit, Delete):
                shifted_edits.append(Delete(edit.index + offset))
            else:
                shifted_edits.append(Update(edit.index + offset, edit.change))
        return ListChange(*shifted_edits)

    def net_length_change(self) -> int:
        """Inserts minus deletes -- the derivative of ``length``."""
        net = 0
        for edit in self.edits:
            if isinstance(edit, Insert):
                net += 1
            elif isinstance(edit, Delete):
                net -= 1
        return net

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ListChange):
            return NotImplemented
        return self.edits == other.edits

    def __hash__(self) -> int:
        return hash(("ListChange", self.edits))

    def __repr__(self) -> str:
        body = ", ".join(repr(edit) for edit in self.edits)
        return f"ListChange({body})"


_NIL = ListChange()
