"""Immutable finite maps.

The counterpart of the Scala ``Map[K, A]`` in Fig. 6.  Maps whose values
live in an abelian group themselves form an abelian group under pointwise
merge (``groupOnMaps``); entries whose merged value equals the inner group's
zero are dropped so the zero map stays canonical.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, Tuple


class PMap:
    """An immutable map with structural equality and hashing.

    >>> PMap.singleton("a", 1).merged_with(PMap.singleton("a", 2), INT_ADD)
    ... # doctest: +SKIP
    PMap({'a': 3})
    """

    __slots__ = ("_entries", "_hash")

    def __init__(self, entries: Dict[Any, Any] | None = None):
        self._entries = dict(entries) if entries else {}
        self._hash: int | None = None

    # -- constructors --------------------------------------------------------

    @staticmethod
    def empty() -> "PMap":
        return _EMPTY_MAP

    @staticmethod
    def singleton(key: Any, value: Any) -> "PMap":
        return PMap({key: value})

    @staticmethod
    def of(**entries: Any) -> "PMap":
        return PMap(entries)

    @staticmethod
    def from_pairs(pairs: Iterable[Tuple[Any, Any]]) -> "PMap":
        return PMap(dict(pairs))

    # -- queries -------------------------------------------------------------

    def get(self, key: Any, default: Any = None) -> Any:
        return self._entries.get(key, default)

    def __getitem__(self, key: Any) -> Any:
        return self._entries[key]

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    def keys(self) -> Iterator[Any]:
        return iter(self._entries)

    def values(self) -> Iterator[Any]:
        return iter(self._entries.values())

    def items(self) -> Iterator[Tuple[Any, Any]]:
        return iter(self._entries.items())

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def is_empty(self) -> bool:
        return not self._entries

    # -- updates (persistent) --------------------------------------------------

    def set(self, key: Any, value: Any) -> "PMap":
        entries = dict(self._entries)
        entries[key] = value
        return PMap(entries)

    def remove(self, key: Any) -> "PMap":
        if key not in self._entries:
            return self
        entries = dict(self._entries)
        del entries[key]
        return PMap(entries)

    def update_with(
        self, key: Any, default: Any, fn: Callable[[Any], Any]
    ) -> "PMap":
        """Apply ``fn`` to the value at ``key`` (or ``default`` if absent)."""
        current = self._entries.get(key, default)
        return self.set(key, fn(current))

    # -- group structure ---------------------------------------------------------

    def merged_with(self, other: "PMap", value_group: Any) -> "PMap":
        """Pointwise merge using ``value_group``, dropping zero entries.

        This is ``groupOnMaps(group).merge`` of Fig. 6: keys present in only
        one map keep their value (merging with the implicit zero), keys in
        both merge their values, and any resulting zero is removed so maps
        stay in canonical form.
        """
        if not isinstance(other, PMap):
            raise TypeError(f"cannot merge PMap with {type(other).__name__}")
        # Only keys touched by ``other`` can change, so cost is
        # O(len(other)), not O(len(self)) -- essential for incremental
        # updates where ``other`` is a small change.
        entries = dict(self._entries)
        for key, value in other._entries.items():
            if key in entries:
                merged = value_group.merge(entries[key], value)
                if value_group.is_zero(merged):
                    del entries[key]
                else:
                    entries[key] = merged
            elif not value_group.is_zero(value):
                entries[key] = value
        return PMap(entries)

    def normalized(self, value_group: Any) -> "PMap":
        """Drop entries equal to the inner group's zero."""
        return PMap(
            {
                key: value
                for key, value in self._entries.items()
                if not value_group.is_zero(value)
            }
        )

    # -- structure-preserving operations ------------------------------------------

    def map_values(self, fn: Callable[[Any], Any]) -> "PMap":
        return PMap({key: fn(value) for key, value in self._entries.items()})

    def map_entries(self, fn: Callable[[Any, Any], Any]) -> "PMap":
        """Map ``fn(key, value)`` over entries, keeping keys."""
        return PMap(
            {key: fn(key, value) for key, value in self._entries.items()}
        )

    def filter(self, predicate: Callable[[Any, Any], bool]) -> "PMap":
        return PMap(
            {
                key: value
                for key, value in self._entries.items()
                if predicate(key, value)
            }
        )

    def fold_map(
        self, zero: Any, merge: Callable[[Any, Any], Any],
        fn: Callable[[Any, Any], Any],
    ) -> Any:
        """``foldMapGen zero merge fn self`` of Fig. 6: map ``fn`` over the
        entries and fold the results with ``merge``/``zero``."""
        result = zero
        for key, value in self._entries.items():
            result = merge(result, fn(key, value))
        return result

    # -- object protocol -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PMap):
            return NotImplemented
        return self._entries == other._entries

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._entries.items()))
        return self._hash

    def __repr__(self) -> str:
        if not self._entries:
            return "PMap({})"
        try:
            items = sorted(self._entries.items(), key=lambda kv: repr(kv[0]))
        except TypeError:
            items = list(self._entries.items())
        body = ", ".join(f"{key!r}: {value!r}" for key, value in items)
        return f"PMap({{{body}}})"


_EMPTY_MAP = PMap()
