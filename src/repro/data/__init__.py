"""Runtime data substrate for the ILC reproduction.

This package is the Python counterpart of the Scala primitives in Fig. 6 of
the paper: bags with signed multiplicities, immutable maps, first-class
abelian groups, and the erased change-value ADT of Sec. 4.4
(``Replace`` / ``GroupChange``).
"""

from repro.data.bag import Bag
from repro.data.change_values import (
    Change,
    GroupChange,
    Replace,
    is_nil_change,
    ominus_values,
    oplus_value,
)
from repro.data.group import (
    AbelianGroup,
    BAG_GROUP,
    FLOAT_ADD_GROUP,
    INT_ADD_GROUP,
    INT_MUL_GROUP,
    MapGroup,
    PairGroup,
    map_group,
    pair_group,
)
from repro.data.pmap import PMap
from repro.data.sum import Inl, InlChange, Inr, InrChange, SumValue

__all__ = [
    "AbelianGroup",
    "BAG_GROUP",
    "Bag",
    "Change",
    "FLOAT_ADD_GROUP",
    "GroupChange",
    "INT_ADD_GROUP",
    "INT_MUL_GROUP",
    "Inl",
    "InlChange",
    "Inr",
    "InrChange",
    "MapGroup",
    "PMap",
    "PairGroup",
    "Replace",
    "SumValue",
    "is_nil_change",
    "map_group",
    "ominus_values",
    "oplus_value",
    "pair_group",
]
