"""Tagged unions (sums) as runtime values, with structural changes.

The paper's case-study plugin "also implements tuples, tagged unions,
Booleans and integers with the usual introduction and elimination forms"
(Sec. 4.4).  Beyond the paper, sums here get *structural* changes (part
of the Sec. 6 algebraic-data-types future work): a change to ``Inl a``
that stays on the left is ``InlChange(da)`` carrying a payload change,
letting ``matchSum`` propagate branch derivatives instead of replacing
wholesale; side switches fall back to ``Replace``.
"""

from __future__ import annotations

from typing import Any

from repro.data.change_values import Change, oplus_value


class SumValue:
    """Base class for values of a sum type ``σ + τ``."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self.value == other.value

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.value))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.value!r})"


class Inl(SumValue):
    """Left injection into a sum type."""

    __slots__ = ()


class Inr(SumValue):
    """Right injection into a sum type."""

    __slots__ = ()


class _SideChange(Change):
    """A payload change that stays on one side of the sum."""

    __slots__ = ("change",)
    _side: type = SumValue

    def __init__(self, change: Any):
        self.change = change

    def apply_to(self, value: Any) -> Any:
        if not isinstance(value, self._side):
            raise TypeError(
                f"{type(self).__name__} applied to {value!r}: the change "
                "stays on the other side (use Replace to switch sides)"
            )
        return self._side(oplus_value(value.value, self.change))

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self.change == other.change

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.change))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.change!r})"


class InlChange(_SideChange):
    """A change to ``Inl a`` staying left: ``Inl a ⊕ InlChange(da) =
    Inl (a ⊕ da)``."""

    __slots__ = ()
    _side = Inl


class InrChange(_SideChange):
    """A change to ``Inr b`` staying right."""

    __slots__ = ()
    _side = Inr
