"""Bags (multisets) with signed multiplicities.

A bag maps elements to integer multiplicities, which may be negative; this
is the ``Bag S`` of Sec. 2.1 of the paper, following Koch's "ring of
databases" representation.  Bags with signed multiplicities form an abelian
group under element-wise addition of multiplicities (``merge``), with
``negate`` as inverse and the empty bag as identity, which is what makes
them an ideal change representation: *every* bag is a valid change to every
other bag.

Bags are immutable and hashable, so they can be used as map keys and as
elements of other bags.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, Tuple


class Bag:
    """An immutable multiset with signed multiplicities.

    >>> Bag.of(1, 1, 2)
    Bag({1: 2, 2: 1})
    >>> Bag.of(1).merge(Bag.of(1).negate())
    Bag({})
    """

    __slots__ = ("_counts", "_hash")

    def __init__(self, counts: Dict[Any, int] | None = None):
        cleaned: Dict[Any, int] = {}
        if counts:
            for element, count in counts.items():
                if not isinstance(count, int):
                    raise TypeError(
                        f"bag multiplicities must be ints, got {count!r}"
                    )
                if count != 0:
                    cleaned[element] = count
        self._counts = cleaned
        self._hash: int | None = None

    # -- constructors ------------------------------------------------------

    @staticmethod
    def empty() -> "Bag":
        """The empty bag, the identity of the bag group."""
        return _EMPTY_BAG

    @staticmethod
    def singleton(element: Any) -> "Bag":
        """A bag containing ``element`` exactly once."""
        return Bag({element: 1})

    @staticmethod
    def of(*elements: Any) -> "Bag":
        """Build a bag from positive occurrences of ``elements``."""
        return Bag.from_iterable(elements)

    @staticmethod
    def from_iterable(elements: Iterable[Any]) -> "Bag":
        counts: Dict[Any, int] = {}
        for element in elements:
            counts[element] = counts.get(element, 0) + 1
        return Bag(counts)

    @staticmethod
    def from_counts(pairs: Iterable[Tuple[Any, int]]) -> "Bag":
        """Build a bag from ``(element, multiplicity)`` pairs, summing dups."""
        counts: Dict[Any, int] = {}
        for element, count in pairs:
            counts[element] = counts.get(element, 0) + count
        return Bag(counts)

    # -- group operations --------------------------------------------------

    def merge(self, other: "Bag") -> "Bag":
        """Element-wise sum of multiplicities (the group operation)."""
        if not isinstance(other, Bag):
            raise TypeError(f"cannot merge Bag with {type(other).__name__}")
        if not self._counts:
            return other
        if not other._counts:
            return self
        counts = dict(self._counts)
        for element, count in other._counts.items():
            new_count = counts.get(element, 0) + count
            if new_count == 0:
                counts.pop(element, None)
            else:
                counts[element] = new_count
        return Bag(counts)

    def negate(self) -> "Bag":
        """Negate every multiplicity (the group inverse)."""
        return Bag({element: -count for element, count in self._counts.items()})

    def difference(self, other: "Bag") -> "Bag":
        """``self ⊖ other`` in the bag change structure: merge with negation."""
        return self.merge(other.negate())

    # -- queries -----------------------------------------------------------

    def multiplicity(self, element: Any) -> int:
        """The signed multiplicity of ``element`` (0 if absent)."""
        return self._counts.get(element, 0)

    def __contains__(self, element: Any) -> bool:
        return element in self._counts

    def distinct_size(self) -> int:
        """Number of distinct elements with nonzero multiplicity."""
        return len(self._counts)

    def total_size(self) -> int:
        """Sum of absolute multiplicities (the "weight" of the bag)."""
        return sum(abs(count) for count in self._counts.values())

    def signed_size(self) -> int:
        """Sum of signed multiplicities."""
        return sum(self._counts.values())

    def is_empty(self) -> bool:
        return not self._counts

    def is_proper(self) -> bool:
        """True if every multiplicity is positive (an "ordinary" multiset)."""
        return all(count > 0 for count in self._counts.values())

    def counts(self) -> Iterator[Tuple[Any, int]]:
        """Iterate over ``(element, multiplicity)`` pairs."""
        return iter(self._counts.items())

    def elements(self) -> Iterator[Any]:
        """Iterate distinct elements (ignoring multiplicities)."""
        return iter(self._counts)

    def expand(self) -> Iterator[Any]:
        """Iterate elements with positive multiplicity, repeated.

        Raises ``ValueError`` on bags with negative multiplicities, for
        which expansion is not meaningful.
        """
        for element, count in self._counts.items():
            if count < 0:
                raise ValueError(
                    f"cannot expand bag with negative multiplicity: "
                    f"{element!r} has {count}"
                )
            for _ in range(count):
                yield element

    # -- structure-preserving operations ------------------------------------

    def map(self, fn: Callable[[Any], Any]) -> "Bag":
        """Apply ``fn`` to every element, summing multiplicities of clashes."""
        counts: Dict[Any, int] = {}
        for element, count in self._counts.items():
            image = fn(element)
            new_count = counts.get(image, 0) + count
            if new_count == 0:
                counts.pop(image, None)
            else:
                counts[image] = new_count
        return Bag(counts)

    def filter(self, predicate: Callable[[Any], bool]) -> "Bag":
        return Bag(
            {
                element: count
                for element, count in self._counts.items()
                if predicate(element)
            }
        )

    def flat_map(self, fn: Callable[[Any], "Bag"]) -> "Bag":
        """Monadic bind: ``fn`` maps each element to a bag; multiplicities
        multiply, following the signed-multiset monad."""
        result: Dict[Any, int] = {}
        for element, count in self._counts.items():
            for image, inner_count in fn(element).counts():
                new_count = result.get(image, 0) + count * inner_count
                if new_count == 0:
                    result.pop(image, None)
                else:
                    result[image] = new_count
        return Bag(result)

    def fold_group(self, group: Any, fn: Callable[[Any], Any]) -> Any:
        """``foldBag group fn self`` -- the unique abelian-group homomorphism
        from the free group on elements to ``group`` extending ``fn``.

        Satisfies the defining equations of Sec. 4.4:

        * ``foldBag g f empty        = g.zero``
        * ``foldBag g f (merge a b)  = foldBag g f a  •  foldBag g f b``
        * ``foldBag g f (negate b)   = inverse (foldBag g f b)``
        * ``foldBag g f (singleton v) = f v``
        """
        # scale() handles signs and uses the group's fast path (or
        # O(log count) doubling), so high multiplicities don't cost one
        # merge per occurrence; a group-provided bulk fold lets container
        # groups accumulate mutably instead of copying the partial per
        # element.  Empty/singleton bags (the per-step change shape) skip
        # both: zero ⊕ scale(v, c) = scale(v, c) in any abelian group.
        counts = self._counts
        if not counts:
            return group.zero
        scale = group.scale
        if len(counts) == 1:
            ((element, count),) = counts.items()
            value = fn(element)
            return value if count == 1 else scale(value, count)
        fold = getattr(group, "_fold", None)
        if fold is not None:
            return fold(
                scale(fn(element), count) for element, count in counts.items()
            )
        result = group.zero
        merge = group.merge
        for element, count in counts.items():
            result = merge(result, scale(fn(element), count))
        return result

    # -- object protocol -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bag):
            return NotImplemented
        return self._counts == other._counts

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._counts.items()))
        return self._hash

    def __len__(self) -> int:
        return len(self._counts)

    def __iter__(self) -> Iterator[Tuple[Any, int]]:
        return iter(self._counts.items())

    def __bool__(self) -> bool:
        return bool(self._counts)

    def __repr__(self) -> str:
        if not self._counts:
            return "Bag({})"
        try:
            items = sorted(self._counts.items(), key=lambda kv: repr(kv[0]))
        except TypeError:
            items = list(self._counts.items())
        body = ", ".join(f"{element!r}: {count}" for element, count in items)
        return f"Bag({{{body}}})"


_EMPTY_BAG = Bag()
