"""Erased runtime change values (Sec. 4.4).

The paper's practical plugin represents a change to a base value as

    Δτ  =  Replace τ  |  GroupChange (AbelianGroup τ) Δ

with update defined by

    v ⊕ Replace u                 = u
    v ⊕ GroupChange (•, inv, 0) d = v • d

A ``Replace`` change triggers recomputation downstream; a ``GroupChange``
carries a *difference* that self-maintainable derivatives can propagate
without touching base values.

Changes to *functions* need no constructor of their own: at runtime a
function change is simply a function value of two (curried) arguments
``a, da``, and the erased ⊕ of Fig. 3 applies:

    (f ⊕ df) x = f x ⊕ df x (x ⊖ x)

Function values participate through the ``__oplus__`` protocol, implemented
by the evaluator's closure/primitive classes.
"""

from __future__ import annotations

from typing import Any

from repro.data.group import AbelianGroup
from repro.errors import InvalidChangeError
from repro.observability import metrics as _metrics

# Change-algebra operation counters (Alvarez-Picallo's change-action line
# of work evaluates incrementalization by counting exactly these).  The
# counters live in the process-global registry; each call site pays a
# single flag read while observability is disabled.
_STATE = _metrics.STATE
_OPLUS_COUNTER = _metrics.GLOBAL_REGISTRY.counter("changes.oplus")
_OMINUS_COUNTER = _metrics.GLOBAL_REGISTRY.counter("changes.ominus")
_COMPOSE_COUNTER = _metrics.GLOBAL_REGISTRY.counter("changes.compose")
_COMPOSE_QUEUED = _metrics.GLOBAL_REGISTRY.counter("changes.compose_queued")
_NIL_COUNTER = _metrics.GLOBAL_REGISTRY.counter("changes.nil")


class Change:
    """Base class of erased change values for base types.

    Plugins may add change representations beyond ``Replace`` and
    ``GroupChange`` (e.g. the lists plugin's index-based edit scripts) by
    subclassing and implementing ``apply_to`` -- ``oplus_value`` dispatches
    through it.
    """

    __slots__ = ()

    def apply_to(self, value: Any) -> Any:
        """``value ⊕ self``."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement apply_to"
        )


class Replace(Change):
    """A change that replaces the old value wholesale.

    ``Replace(v)`` is always a valid change from *any* old value to ``v``;
    in particular ``Replace(v)`` is a valid nil change for ``v`` itself.
    This is the paper's generic ``⊖``: ``v ⊖ u = Replace v``.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Replace):
            return NotImplemented
        return self.value == other.value

    def __hash__(self) -> int:
        return hash(("Replace", self.value))

    def apply_to(self, value: Any) -> Any:
        return self.value

    def __repr__(self) -> str:
        return f"Replace({self.value!r})"


class GroupChange(Change):
    """A difference expressed via an abelian group on the base type.

    ``v ⊕ GroupChange(g, d) = g.merge(v, d)``.  The update never inspects
    more of ``v`` than the group operation does, which for bags and maps is
    proportional to the size of ``d`` -- the heart of self-maintainability.
    """

    __slots__ = ("group", "delta")

    def __init__(self, group: AbelianGroup, delta: Any):
        self.group = group
        self.delta = delta

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GroupChange):
            return NotImplemented
        return self.group == other.group and self.delta == other.delta

    def __hash__(self) -> int:
        return hash(("GroupChange", self.group, self.delta))

    def apply_to(self, value: Any) -> Any:
        return self.group.merge(value, self.delta)

    def __repr__(self) -> str:
        return f"GroupChange({self.group!r}, {self.delta!r})"


def oplus_value(value: Any, change: Any) -> Any:
    """Update ``value`` with ``change`` (the erased ``⊕``).

    Dispatches on the change representation: ``Replace`` and ``GroupChange``
    for base data, the ``__oplus__`` protocol for function values updated by
    function changes, and tuples pointwise (the product change structure
    used by the pairs plugin).
    """
    if _STATE.on:
        _OPLUS_COUNTER.inc()
    if isinstance(change, Replace):
        return change.value
    if isinstance(change, GroupChange):
        return change.group.merge(value, change.delta)
    if isinstance(change, Change):
        return change.apply_to(value)
    if isinstance(change, tuple) and isinstance(value, tuple):
        if len(change) != len(value):
            raise InvalidChangeError(
                f"pair change arity {len(change)} != value arity {len(value)}",
                change=change,
            )
        return tuple(
            oplus_value(component, component_change)
            for component, component_change in zip(value, change)
        )
    oplus = getattr(value, "__oplus__", None)
    if oplus is not None:
        return oplus(change)
    raise InvalidChangeError(
        f"cannot apply change {change!r} to value {value!r}", change=change
    )


def ominus_values(new: Any, old: Any) -> Any:
    """The erased generic ``⊖``: a change taking ``old`` to ``new``.

    Base data falls back to ``Replace(new)`` exactly as in Sec. 4.4 ("the
    operator ⊖ does not know which group to use, so it does not take
    advantage of the group structure").  Function values use their
    ``__ominus__`` protocol, and tuples difference pointwise.
    """
    if _STATE.on:
        _OMINUS_COUNTER.inc()
    ominus = getattr(new, "__ominus__", None)
    if ominus is not None:
        return ominus(old)
    if isinstance(new, tuple) and isinstance(old, tuple) and len(new) == len(old):
        return tuple(
            ominus_values(new_component, old_component)
            for new_component, old_component in zip(new, old)
        )
    return Replace(new)


def group_ominus(group: AbelianGroup, new: Any, old: Any) -> GroupChange:
    """A group-aware ``⊖``: ``new ⊖ old = GroupChange(g, new • inv(old))``."""
    return GroupChange(group, group.merge(new, group.inverse(old)))


def nil_change_for(value: Any) -> Any:
    """A canonical nil change for ``value``.

    Ints and bags get detectably-nil ``GroupChange``s with zero deltas;
    everything else falls back to ``Replace(value)``, which is a valid (if
    opaque) nil change.  Function values use their ``__nil_change__`` hook.
    """
    from repro.data.bag import Bag
    from repro.data.group import BAG_GROUP, INT_ADD_GROUP

    if _STATE.on:
        _NIL_COUNTER.inc()
    nil_hook = getattr(value, "__nil_change__", None)
    if nil_hook is not None:
        return nil_hook()
    if isinstance(value, bool):
        return Replace(value)
    if isinstance(value, int):
        return GroupChange(INT_ADD_GROUP, 0)
    if isinstance(value, Bag):
        return GroupChange(BAG_GROUP, Bag.empty())
    if isinstance(value, tuple):
        return tuple(nil_change_for(component) for component in value)
    from repro.data.sum import Inl, InlChange, Inr, InrChange

    if isinstance(value, Inl):
        return InlChange(nil_change_for(value.value))
    if isinstance(value, Inr):
        return InrChange(nil_change_for(value.value))
    return Replace(value)


def compose_changes(first: Any, second: Any) -> Any:
    """A single change equivalent to applying ``first`` then ``second``:
    ``v ⊕ compose(d₁, d₂) = (v ⊕ d₁) ⊕ d₂`` for every ``v``.

    Returns None when no base-independent composition exists (the caller
    should keep the changes queued instead).  Compositions found:

    * ``GroupChange(g, a)`` then ``GroupChange(g, b)`` = ``GroupChange(g, a•b)``;
    * anything then ``Replace(u)`` = ``Replace(u)`` (the second wins);
    * ``Replace(u)`` then ``d`` = ``Replace(u ⊕ d)``;
    * list edit scripts concatenate;
    * pair changes compose pointwise (when both components compose).
    """
    if _STATE.on:
        _COMPOSE_COUNTER.inc()
    if isinstance(second, Replace):
        return second
    if isinstance(first, Replace):
        return Replace(oplus_value(first.value, second))
    if (
        isinstance(first, GroupChange)
        and isinstance(second, GroupChange)
        and first.group == second.group
    ):
        return GroupChange(first.group, first.group.merge(first.delta, second.delta))
    if isinstance(first, tuple) and isinstance(second, tuple) and len(first) == len(second):
        composed = tuple(
            compose_changes(first_component, second_component)
            for first_component, second_component in zip(first, second)
        )
        if all(component is not None for component in composed):
            return composed
        return None
    compose_hook = getattr(first, "compose_with", None)
    if compose_hook is not None:
        return compose_hook(second)
    if _STATE.on:
        _COMPOSE_QUEUED.inc()
    return None


def change_size(change: Any) -> int:
    """A size estimate of a change's payload, for telemetry.

    This is the ``|change|`` of the paper's O(|change|) claim, measured on
    the erased representation: the number of touched elements for group
    deltas over sized carriers, the replaced value's size for ``Replace``,
    the component sum for products, and 1 for scalars and opaque changes
    (function changes, custom plugin changes without a hook).
    """
    from repro.data.bag import Bag
    from repro.data.pmap import PMap

    def payload_size(payload: Any) -> int:
        if isinstance(payload, Bag):
            return sum(abs(count) for _, count in payload.counts())
        if isinstance(payload, PMap):
            return sum(payload_size(value) for _, value in payload.items())
        if isinstance(payload, (list, tuple, set, frozenset, dict)):
            return len(payload)
        return 1

    if isinstance(change, GroupChange):
        return payload_size(change.delta)
    if isinstance(change, Replace):
        return payload_size(change.value)
    if isinstance(change, tuple):
        return sum(change_size(component) for component in change)
    size_hook = getattr(change, "__change_size__", None)
    if size_hook is not None:
        return size_hook()
    return 1


def is_nil_change(change: Any, base: Any = None) -> bool:
    """Conservatively detect nil changes.

    Returns True only when the change provably does not alter any base
    value (zero-delta ``GroupChange``) or provably does not alter the given
    ``base`` (``Replace`` equal to it).  Function changes are never
    detectably nil at runtime -- the static analysis of Sec. 4.2 exists
    precisely because this runtime check is conservative.
    """
    if isinstance(change, GroupChange):
        return change.group.is_zero(change.delta)
    if isinstance(change, Replace) and base is not None:
        return change.value == base
    from repro.data.sum import SumValue, _SideChange

    if isinstance(change, _SideChange):
        inner_base = base.value if isinstance(base, SumValue) else None
        return is_nil_change(change.change, inner_base)
    if isinstance(change, tuple):
        if base is not None and isinstance(base, tuple) and len(base) == len(change):
            return all(
                is_nil_change(component, base_component)
                for component, base_component in zip(change, base)
            )
        return all(is_nil_change(component) for component in change)
    return False
