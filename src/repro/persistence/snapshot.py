"""Checkpointed snapshots with an atomic manifest.

A snapshot captures the engine's committed state at a step boundary:
the (materialized) current inputs, the incremental output, the step
counter, and -- crucially -- the journal offset of the last record whose
effect the snapshot includes.  Recovery restores the newest loadable
snapshot and replays only the journal suffix past that offset.

Atomicity discipline (the classic temp-file + rename dance):

1. the snapshot body is wrapped in the codec's checksummed envelope and
   written to ``<name>.tmp``, flushed, and fsynced;
2. ``os.replace`` renames it into place (atomic on POSIX);
3. the directory fd is fsynced so the rename itself is durable;
4. only then is the manifest rewritten (same dance) to mention it.

A crash between (2) and (4) leaves an orphan snapshot file the manifest
does not mention -- harmless.  A crash during (1) leaves a ``.tmp`` no
reader ever looks at.  The manifest is therefore always a consistent
(if possibly slightly stale) index, and every file it names is either
fully written or detectably corrupt via its envelope CRC.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.errors import SnapshotError
from repro.observability import metrics as _metrics
from repro.persistence.codec import (
    CODEC_VERSION,
    canonical_json,
    checksum,
    unwrap,
    wrap,
)

_STATE = _metrics.STATE
_WRITES = _metrics.GLOBAL_REGISTRY.counter("persistence.snapshot.writes")
_BYTES = _metrics.GLOBAL_REGISTRY.counter("persistence.snapshot.bytes_written")
_PRUNED = _metrics.GLOBAL_REGISTRY.counter("persistence.snapshot.pruned")
_LOAD_FAILURES = _metrics.GLOBAL_REGISTRY.counter(
    "persistence.snapshot.load_failures"
)

MANIFEST_FILE = "manifest.json"


def manifest_path(directory: str) -> str:
    return os.path.join(directory, MANIFEST_FILE)


@dataclass(frozen=True)
class SnapshotEntry:
    """One manifest row: a snapshot file and where it sits in the log."""

    file: str
    step: int
    journal_offset: int
    crc: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "file": self.file,
            "step": self.step,
            "journal_offset": self.journal_offset,
            "crc": self.crc,
        }


def _atomic_write(directory: str, name: str, text: str) -> str:
    """Write ``text`` to ``directory/name`` via temp file + rename, with
    file and directory fsyncs so the result survives power loss."""
    path = os.path.join(directory, name)
    temp_path = path + ".tmp"
    try:
        with open(temp_path, "w", encoding="ascii") as handle:
            handle.write(text)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
        directory_fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(directory_fd)
        finally:
            os.close(directory_fd)
    except OSError as error:
        raise SnapshotError(
            f"cannot write snapshot file {path!r}: {error}"
        ) from error
    return path


def write_snapshot(
    directory: str,
    state: Dict[str, Any],
    *,
    step: int,
    journal_offset: int,
    keep: int = 0,
) -> SnapshotEntry:
    """Atomically persist ``state`` (already codec-encoded) and index it.

    ``state`` is the snapshot body; ``step``/``journal_offset`` are
    stamped into it and into the manifest entry.  With ``keep > 0``, old
    snapshots beyond the newest ``keep`` are pruned from disk and from
    the manifest (the recovery ladder needs at least two rungs to be
    interesting, so ``keep`` below 2 is promoted to 2).
    """
    body = dict(state)
    body["step"] = step
    body["journal_offset"] = journal_offset
    text = wrap(body)
    name = f"snapshot-{step:08d}.json"
    _atomic_write(directory, name, text)
    if _STATE.on:
        _WRITES.inc()
        _BYTES.inc(len(text) + 1)
    entry = SnapshotEntry(
        file=name,
        step=step,
        journal_offset=journal_offset,
        crc=checksum(text),
    )
    entries = [e for e in load_manifest(directory) if e.file != name]
    entries.append(entry)
    entries.sort(key=lambda e: (e.step, e.file))
    if keep:
        keep = max(keep, 2)
        for stale in entries[:-keep]:
            try:
                os.unlink(os.path.join(directory, stale.file))
            except OSError:
                pass
            if _STATE.on:
                _PRUNED.inc()
        entries = entries[-keep:]
    _write_manifest(directory, entries)
    return entry


def _write_manifest(directory: str, entries: List[SnapshotEntry]) -> None:
    body = {
        "version": CODEC_VERSION,
        "snapshots": [entry.to_dict() for entry in entries],
    }
    _atomic_write(directory, MANIFEST_FILE, canonical_json(body))


def load_manifest(directory: str) -> List[SnapshotEntry]:
    """The manifest's entries, oldest first; ``[]`` when absent.

    A structurally-unreadable manifest raises ``SnapshotError`` -- the
    recovery ladder treats that as "no snapshots" and falls through to
    full journal replay, but callers who expected snapshots get a loud
    signal.
    """
    path = manifest_path(directory)
    if not os.path.exists(path):
        return []
    import json

    try:
        with open(path, "r", encoding="ascii") as handle:
            data = json.load(handle)
        entries = [
            SnapshotEntry(
                file=str(row["file"]),
                step=int(row["step"]),
                journal_offset=int(row["journal_offset"]),
                crc=str(row["crc"]),
            )
            for row in data["snapshots"]
        ]
    except (OSError, ValueError, KeyError, TypeError) as error:
        raise SnapshotError(
            f"manifest {path!r} is unreadable: {error}"
        ) from error
    entries.sort(key=lambda entry: (entry.step, entry.file))
    return entries


def load_snapshot(directory: str, entry: SnapshotEntry) -> Dict[str, Any]:
    """Load and validate one snapshot; raises ``SnapshotError`` on any
    corruption (missing file, manifest/file checksum disagreement,
    envelope CRC or version failure, field drift)."""
    path = os.path.join(directory, entry.file)
    try:
        with open(path, "r", encoding="ascii") as handle:
            text = handle.read().rstrip("\n")
    except OSError as error:
        if _STATE.on:
            _LOAD_FAILURES.inc()
        raise SnapshotError(
            f"snapshot {entry.file!r} is unreadable: {error}"
        ) from error
    try:
        if checksum(text) != entry.crc:
            raise SnapshotError(
                f"snapshot {entry.file!r} does not match its manifest "
                f"checksum (recorded {entry.crc!r}, computed {checksum(text)!r})"
            )
        body = unwrap(text)
        if not isinstance(body, dict):
            raise SnapshotError(f"snapshot {entry.file!r} body is not an object")
        if body.get("step") != entry.step:
            raise SnapshotError(
                f"snapshot {entry.file!r} step {body.get('step')!r} "
                f"disagrees with manifest step {entry.step}"
            )
        if body.get("journal_offset") != entry.journal_offset:
            # A stale manifest (e.g. restored from an older backup than
            # the snapshot, or tampered) would otherwise make recovery
            # replay from the wrong log position; the snapshot body
            # carries its own offset under the CRC, so the lie is caught
            # here instead of as silent double-application.
            raise SnapshotError(
                f"stale manifest: snapshot {entry.file!r} was taken at "
                f"journal offset {body.get('journal_offset')!r} but the "
                f"manifest claims {entry.journal_offset}"
            )
    except SnapshotError:
        if _STATE.on:
            _LOAD_FAILURES.inc()
        raise
    except Exception as error:  # CodecError from unwrap
        if _STATE.on:
            _LOAD_FAILURES.inc()
        raise SnapshotError(
            f"snapshot {entry.file!r} failed validation: {error}",
            cause=error,
        ) from error
    return body


__all__ = [
    "MANIFEST_FILE",
    "SnapshotEntry",
    "load_manifest",
    "load_snapshot",
    "manifest_path",
    "write_snapshot",
]
