"""Canonical, versioned, checksummed serialization of values and changes.

Everything the engine needs to persist -- base values, Δ-values, and the
abelian groups a ``GroupChange`` mentions -- is first-order data: ints,
bools, floats, strings, tuples (pairs and lists), bags, maps, and tagged
sums.  Each is encoded as a small tagged JSON object, recursively, so a
journal record or snapshot is plain JSON lines a human (or ``jq``) can
read.

Two properties matter more than compactness:

* **Canonicity.**  ``encode`` of equal values produces byte-identical
  JSON: bag and map entries are sorted by the canonical rendering of
  their encoded keys (Python dict order and hash randomization never
  leak into the bytes), floats use JSON's shortest-repr form, and
  object keys are sorted.  This is what makes seeded runs produce
  byte-identical journals and lets tests compare files, not parses.
* **Honesty.**  Function values and function changes have *no* faithful
  erased representation (a closure's environment may capture anything,
  and Sec. 2 function changes are themselves functions), so they are
  rejected with :class:`~repro.errors.PluginContractError` instead of
  being pickled approximately.  Unknown groups and malformed payloads
  raise :class:`~repro.errors.CodecError` at *encode* time where
  possible, so a journal never contains records that cannot be decoded.

The checksummed envelope (``wrap``/``unwrap``) adds a format version and
a CRC-32 over the canonical body; snapshots use it wholesale and the
journal applies the same CRC per record.
"""

from __future__ import annotations

import json
import math
import zlib
from typing import Any, Callable, Dict, List

from repro.data.bag import Bag
from repro.data.change_values import Change, GroupChange, Replace
from repro.data.group import (
    BAG_GROUP,
    FLOAT_ADD_GROUP,
    INT_ADD_GROUP,
    INT_MUL_GROUP,
    AbelianGroup,
    map_group,
    pair_group,
)
from repro.data.list_changes import Delete, Insert, ListChange, Update
from repro.data.pmap import PMap
from repro.data.sum import Inl, InlChange, Inr, InrChange
from repro.errors import CodecError, PluginContractError

#: Bumped whenever the wire format changes incompatibly.  Decoders reject
#: envelopes from other versions loudly instead of guessing.
CODEC_VERSION = 1


def canonical_json(payload: Any) -> str:
    """The one true JSON rendering: sorted keys, no whitespace, ASCII."""
    try:
        return json.dumps(
            payload,
            sort_keys=True,
            separators=(",", ":"),
            ensure_ascii=True,
            allow_nan=False,
        )
    except (TypeError, ValueError) as error:
        raise CodecError(f"payload is not JSON-canonicalizable: {error}") from error


def checksum(text: str) -> str:
    """CRC-32 of the UTF-8 bytes, as 8 lowercase hex digits."""
    return f"{zlib.crc32(text.encode('utf-8')) & 0xFFFFFFFF:08x}"


# -- groups -----------------------------------------------------------------

#: Decoders for the closed set of persistable groups.  A group is encoded
#: by name plus its structural arguments, so ``map_group(BAG_GROUP)``
#: round-trips to the *same logical group* (groups compare structurally).
_GROUP_DECODERS: Dict[str, Callable[[List[AbelianGroup]], AbelianGroup]] = {
    "IntAdd": lambda args: INT_ADD_GROUP,
    "RatMul": lambda args: INT_MUL_GROUP,
    "FloatAdd": lambda args: FLOAT_ADD_GROUP,
    "BagGroup": lambda args: BAG_GROUP,
    "MapGroup": lambda args: map_group(*args),
    "PairGroup": lambda args: pair_group(*args),
}

_GROUP_ARITY = {
    "IntAdd": 0,
    "RatMul": 0,
    "FloatAdd": 0,
    "BagGroup": 0,
    "MapGroup": 1,
    "PairGroup": 2,
}


def encode_group(group: AbelianGroup) -> Dict[str, Any]:
    if not isinstance(group, AbelianGroup):
        raise CodecError(f"not a group: {group!r}")
    if group.name not in _GROUP_DECODERS:
        raise CodecError(
            f"group {group.name!r} is not persistable: only the standard "
            "groups (IntAdd, RatMul, FloatAdd, BagGroup, MapGroup, "
            "PairGroup) have durable representations"
        )
    if len(group.args) != _GROUP_ARITY[group.name]:
        raise CodecError(
            f"group {group.name!r} has {len(group.args)} argument(s), "
            f"expected {_GROUP_ARITY[group.name]}"
        )
    return {
        "t": "group",
        "name": group.name,
        "args": [encode_group(argument) for argument in group.args],
    }


def decode_group(obj: Any) -> AbelianGroup:
    if not isinstance(obj, dict) or obj.get("t") != "group":
        raise CodecError(f"not an encoded group: {obj!r}")
    name = obj.get("name")
    decoder = _GROUP_DECODERS.get(name)
    if decoder is None:
        raise CodecError(f"unknown group name {name!r}")
    args = obj.get("args", [])
    if not isinstance(args, list) or len(args) != _GROUP_ARITY[name]:
        raise CodecError(f"group {name!r}: malformed arguments {args!r}")
    return decoder([decode_group(argument) for argument in args])


# -- values and changes -----------------------------------------------------


def _reject_function(value: Any, role: str) -> None:
    raise PluginContractError(
        f"cannot serialize {role}: {type(value).__name__} is (or contains) "
        "a function value, and closures/function changes have no faithful "
        "durable representation (journal only first-order state)",
        value=value,
    )


def _sorted_entries(pairs: List[List[Any]]) -> List[List[Any]]:
    """Sort encoded ``[key, payload]`` pairs by the canonical rendering of
    the encoded key -- the determinism backbone for bags and maps."""
    return sorted(pairs, key=lambda pair: canonical_json(pair[0]))


def encode_value(value: Any) -> Any:
    """Encode a base value or an (erased) change as tagged JSON data.

    Values and changes share one recursive encoding: a change *is* a
    first-class value here (Sec. 2's whole point), and product changes
    are literally tuples of component changes.
    """
    # bool before int: bool is an int subclass.
    if isinstance(value, bool):
        return {"t": "bool", "v": value}
    if isinstance(value, int):
        return {"t": "int", "v": value}
    if isinstance(value, float):
        if not math.isfinite(value):
            raise CodecError(f"non-finite float is not persistable: {value!r}")
        return {"t": "float", "v": value}
    if isinstance(value, str):
        return {"t": "str", "v": value}
    if value is None:
        return {"t": "unit"}
    if isinstance(value, tuple):
        return {"t": "tuple", "v": [encode_value(item) for item in value]}
    if isinstance(value, Bag):
        return {
            "t": "bag",
            "v": _sorted_entries(
                [[encode_value(element), count] for element, count in value.counts()]
            ),
        }
    if isinstance(value, PMap):
        return {
            "t": "map",
            "v": _sorted_entries(
                [[encode_value(key), encode_value(item)] for key, item in value.items()]
            ),
        }
    if isinstance(value, Inl):
        return {"t": "inl", "v": encode_value(value.value)}
    if isinstance(value, Inr):
        return {"t": "inr", "v": encode_value(value.value)}
    if isinstance(value, AbelianGroup):
        return encode_group(value)
    if isinstance(value, Replace):
        return {"t": "replace", "v": encode_value(value.value)}
    if isinstance(value, GroupChange):
        return {
            "t": "gchange",
            "group": encode_group(value.group),
            "delta": encode_value(value.delta),
        }
    if isinstance(value, InlChange):
        return {"t": "inlchange", "v": encode_value(value.change)}
    if isinstance(value, InrChange):
        return {"t": "inrchange", "v": encode_value(value.change)}
    if isinstance(value, ListChange):
        edits = []
        for edit in value.edits:
            if isinstance(edit, Insert):
                edits.append({"e": "ins", "i": edit.index, "v": encode_value(edit.value)})
            elif isinstance(edit, Delete):
                edits.append({"e": "del", "i": edit.index})
            elif isinstance(edit, Update):
                edits.append({"e": "upd", "i": edit.index, "c": encode_value(edit.change)})
            else:
                raise CodecError(f"unknown list edit: {edit!r}")
        return {"t": "listchange", "edits": edits}
    if callable(value):
        # Closures, primitives, host functions, updated functions,
        # function *changes* (which at runtime are two-argument
        # functions) -- all land here.
        _reject_function(value, "a function value or function change")
    if isinstance(value, Change):
        raise CodecError(
            f"change type {type(value).__name__} has no durable encoding "
            "(plugins must register first-order change representations "
            "to participate in journaling)"
        )
    raise CodecError(f"value of type {type(value).__name__} is not persistable: {value!r}")


def decode_value(obj: Any) -> Any:
    """Inverse of :func:`encode_value`; raises ``CodecError`` on any
    malformed payload (never returns garbage)."""
    if not isinstance(obj, dict):
        raise CodecError(f"not an encoded value: {obj!r}")
    tag = obj.get("t")
    try:
        if tag == "bool":
            return bool(obj["v"])
        if tag == "int":
            payload = obj["v"]
            if isinstance(payload, bool) or not isinstance(payload, int):
                raise CodecError(f"malformed int payload: {payload!r}")
            return payload
        if tag == "float":
            payload = obj["v"]
            if not isinstance(payload, (int, float)) or isinstance(payload, bool):
                raise CodecError(f"malformed float payload: {payload!r}")
            return float(payload)
        if tag == "str":
            payload = obj["v"]
            if not isinstance(payload, str):
                raise CodecError(f"malformed str payload: {payload!r}")
            return payload
        if tag == "unit":
            return None
        if tag == "tuple":
            return tuple(decode_value(item) for item in obj["v"])
        if tag == "bag":
            counts: Dict[Any, int] = {}
            for entry in obj["v"]:
                element_obj, count = entry
                if isinstance(count, bool) or not isinstance(count, int):
                    raise CodecError(f"malformed bag multiplicity: {count!r}")
                counts[decode_value(element_obj)] = count
            return Bag(counts)
        if tag == "map":
            entries: Dict[Any, Any] = {}
            for entry in obj["v"]:
                key_obj, value_obj = entry
                entries[decode_value(key_obj)] = decode_value(value_obj)
            return PMap(entries)
        if tag == "inl":
            return Inl(decode_value(obj["v"]))
        if tag == "inr":
            return Inr(decode_value(obj["v"]))
        if tag == "group":
            return decode_group(obj)
        if tag == "replace":
            return Replace(decode_value(obj["v"]))
        if tag == "gchange":
            return GroupChange(decode_group(obj["group"]), decode_value(obj["delta"]))
        if tag == "inlchange":
            return InlChange(decode_value(obj["v"]))
        if tag == "inrchange":
            return InrChange(decode_value(obj["v"]))
        if tag == "listchange":
            edits = []
            for edit in obj["edits"]:
                kind = edit.get("e")
                if kind == "ins":
                    edits.append(Insert(int(edit["i"]), decode_value(edit["v"])))
                elif kind == "del":
                    edits.append(Delete(int(edit["i"])))
                elif kind == "upd":
                    edits.append(Update(int(edit["i"]), decode_value(edit["c"])))
                else:
                    raise CodecError(f"unknown list edit tag: {kind!r}")
            return ListChange(*edits)
    except CodecError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise CodecError(f"malformed payload for tag {tag!r}: {error}") from error
    raise CodecError(f"unknown value tag {tag!r}")


# -- checksummed envelope ---------------------------------------------------


def wrap(body: Any) -> str:
    """Wrap an already-encoded body in the versioned, checksummed
    envelope and render it canonically.

    The CRC covers the canonical rendering of the body alone, so any bit
    flip inside the body (or a stale version field) is detected before a
    single byte of the body is interpreted.
    """
    rendered = canonical_json(body)
    return canonical_json(
        {"version": CODEC_VERSION, "crc": checksum(rendered), "body": body}
    )


def unwrap(text: str) -> Any:
    """Validate an envelope produced by :func:`wrap`; returns the body."""
    try:
        envelope = json.loads(text)
    except ValueError as error:
        raise CodecError(f"envelope is not valid JSON: {error}") from error
    if not isinstance(envelope, dict):
        raise CodecError(f"envelope is not an object: {envelope!r}")
    version = envelope.get("version")
    if version != CODEC_VERSION:
        raise CodecError(
            f"unsupported codec version {version!r} (this build reads "
            f"version {CODEC_VERSION})"
        )
    if "body" not in envelope or "crc" not in envelope:
        raise CodecError("envelope is missing 'body' or 'crc'")
    body = envelope["body"]
    expected = checksum(canonical_json(body))
    if envelope["crc"] != expected:
        raise CodecError(
            f"envelope checksum mismatch: recorded {envelope['crc']!r}, "
            f"computed {expected!r}"
        )
    return body


__all__ = [
    "CODEC_VERSION",
    "canonical_json",
    "checksum",
    "decode_group",
    "decode_value",
    "encode_group",
    "encode_value",
    "unwrap",
    "wrap",
]
