"""Durable incremental state.

The paper's premise is that a program's state evolves as a sequence of
first-class changes applied with ``⊕`` -- which is exactly a replayable
log.  This package makes that observation operational:

* ``codec``    -- canonical, versioned, checksummed serialization of
  base values, Δ-values, and the groups they mention (function values
  and function changes are explicitly rejected -- they have no faithful
  erased representation on disk);
* ``journal``  -- an append-only write-ahead change log with per-record
  CRCs and length-prefix framing, tolerant of torn tails;
* ``snapshot`` -- atomically-written periodic checkpoints plus a
  manifest linking each checkpoint to its journal offset;
* ``durable``  -- ``DurableProgram``/``DurabilityPolicy``, the wiring
  that journals every step and checkpoints every N around an engine;
* ``recovery`` -- ``recover(dir)``: newest valid snapshot + journal
  suffix replay through the transactional ``step``, falling back down
  the snapshot ladder on corruption, verified against recomputation.

The key invariant (Alvarez-Picallo & Ong's change-action view): replaying
a monoid-composed change log from a checkpoint reaches exactly the state
of the live run, so a crash can never be distinguished from a pause by a
downstream consumer.
"""

from typing import Any

from repro.persistence.codec import (
    CODEC_VERSION,
    canonical_json,
    checksum,
    decode_value,
    encode_value,
)
from repro.persistence.journal import Journal, JournalRecord, read_journal
from repro.persistence.snapshot import (
    load_manifest,
    load_snapshot,
    write_snapshot,
)

# The wrapper and recovery exports are lazy (PEP 562): ``durable`` is a
# shim over ``repro.runtime.durability``, which itself imports this
# package's codec/journal/snapshot -- eager re-export here would close
# an import cycle through the partially-initialized runtime layer.
_LAZY = {
    "DurabilityPolicy": ("repro.persistence.durable", "DurabilityPolicy"),
    "DurableProgram": ("repro.persistence.durable", "DurableProgram"),
    "RecoveryReport": ("repro.persistence.recovery", "RecoveryReport"),
    "RecoveryResult": ("repro.persistence.recovery", "RecoveryResult"),
    "recover": ("repro.persistence.recovery", "recover"),
}


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    from importlib import import_module

    return getattr(import_module(module_name), attr)

__all__ = [
    "CODEC_VERSION",
    "DurabilityPolicy",
    "DurableProgram",
    "Journal",
    "JournalRecord",
    "RecoveryReport",
    "RecoveryResult",
    "canonical_json",
    "checksum",
    "decode_value",
    "encode_value",
    "load_manifest",
    "load_snapshot",
    "read_journal",
    "recover",
    "write_snapshot",
]
