"""Durable incremental state.

The paper's premise is that a program's state evolves as a sequence of
first-class changes applied with ``⊕`` -- which is exactly a replayable
log.  This package makes that observation operational:

* ``codec``    -- canonical, versioned, checksummed serialization of
  base values, Δ-values, and the groups they mention (function values
  and function changes are explicitly rejected -- they have no faithful
  erased representation on disk);
* ``journal``  -- an append-only write-ahead change log with per-record
  CRCs and length-prefix framing, tolerant of torn tails;
* ``snapshot`` -- atomically-written periodic checkpoints plus a
  manifest linking each checkpoint to its journal offset;
* ``durable``  -- ``DurableProgram``/``DurabilityPolicy``, the wiring
  that journals every step and checkpoints every N around an engine;
* ``recovery`` -- ``recover(dir)``: newest valid snapshot + journal
  suffix replay through the transactional ``step``, falling back down
  the snapshot ladder on corruption, verified against recomputation.

The key invariant (Alvarez-Picallo & Ong's change-action view): replaying
a monoid-composed change log from a checkpoint reaches exactly the state
of the live run, so a crash can never be distinguished from a pause by a
downstream consumer.
"""

from repro.persistence.codec import (
    CODEC_VERSION,
    canonical_json,
    checksum,
    decode_value,
    encode_value,
)
from repro.persistence.durable import DurabilityPolicy, DurableProgram
from repro.persistence.journal import Journal, JournalRecord, read_journal
from repro.persistence.recovery import RecoveryReport, RecoveryResult, recover
from repro.persistence.snapshot import (
    load_manifest,
    load_snapshot,
    write_snapshot,
)

__all__ = [
    "CODEC_VERSION",
    "DurabilityPolicy",
    "DurableProgram",
    "Journal",
    "JournalRecord",
    "RecoveryReport",
    "RecoveryResult",
    "canonical_json",
    "checksum",
    "decode_value",
    "encode_value",
    "load_manifest",
    "load_snapshot",
    "read_journal",
    "recover",
    "write_snapshot",
]
