"""Crash recovery: newest valid snapshot + journal suffix replay.

``recover(dir)`` walks a ladder of candidate restore points, newest
first, and returns the first one that survives restore, replay, and
verification:

1. **each manifest snapshot, newest → oldest** -- validate its envelope
   CRC and manifest cross-checks, rebuild the engine, re-initialize from
   the checkpointed inputs (which also rebuilds the caching engine's
   intermediate caches), confirm the recomputed output matches the
   checkpointed one, fast-forward the step counter, and replay the
   journal records past the snapshot's offset through the resilient,
   transactional ``step``;
2. **the journal's init record** -- the rung of last resort: replay the
   *entire* change log from the base inputs.

Any failure on a rung -- a corrupt snapshot, a stale manifest offset, a
step-number mismatch, a change the engine rejects mid-suffix, an output
that fails verification -- drops to the next rung and is recorded in the
report.  Corruption is therefore always *detected* (it shows up as a
failed rung, truncated journal bytes, or a ``RecoveryError``); it is
never silently absorbed into state.

The one deliberate leniency: if the **final** journal record fails to
apply, the crash is taken to have happened mid-step (the record was
written ahead of an engine step that never committed) and the record is
dropped like a torn tail, because a write-ahead log cannot distinguish
the two.  A failing record *before* other valid records admits no such
reading and fails the rung.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import RecoveryError, ReproError
from repro.incremental.caching import CachingIncrementalProgram
from repro.incremental.engine import IncrementalProgram
from repro.incremental.resilient import ResiliencePolicy, ResilientProgram
from repro.lang.parser import parse
from repro.lang.types import uncurry_fun_type
from repro.observability import metrics as _metrics
from repro.persistence.codec import CODEC_VERSION, decode_value
from repro.persistence.durable import DurabilityPolicy, DurableProgram
from repro.persistence.journal import (
    Journal,
    JournalRecord,
    JournalScan,
    journal_path,
    read_journal,
)
from repro.persistence.snapshot import (
    SnapshotEntry,
    load_manifest,
    load_snapshot,
)

_STATE = _metrics.STATE
_ATTEMPTS = _metrics.GLOBAL_REGISTRY.counter("persistence.recovery.attempts")
_REPLAYED = _metrics.GLOBAL_REGISTRY.counter(
    "persistence.recovery.replayed_steps"
)
_FALLBACKS = _metrics.GLOBAL_REGISTRY.counter(
    "persistence.recovery.fallbacks"
)
_FAILURES = _metrics.GLOBAL_REGISTRY.counter("persistence.recovery.failures")


@dataclass
class RecoveryReport:
    """Everything a recovery observed, for operators and CI artifacts."""

    directory: str
    program: str
    steps: int = 0
    snapshot_used: Optional[str] = None  # file name, or None = init rung
    replayed_steps: int = 0
    skipped_aborts: int = 0
    #: Journaled steps discarded because they lie beyond the caller's
    #: ``through_step`` cap (a sharded run's acknowledged cut).
    trimmed_steps: int = 0
    dropped_tail_step: bool = False
    journal_records: int = 0
    torn_bytes: int = 0
    verified: Optional[bool] = None
    #: Per-rung outcomes: ``{"rung": ..., "ok": bool, "reason": ...}``.
    attempts: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "recovery",
            "directory": self.directory,
            "program": self.program,
            "steps": self.steps,
            "snapshot_used": self.snapshot_used,
            "replayed_steps": self.replayed_steps,
            "skipped_aborts": self.skipped_aborts,
            "trimmed_steps": self.trimmed_steps,
            "dropped_tail_step": self.dropped_tail_step,
            "journal_records": self.journal_records,
            "torn_bytes": self.torn_bytes,
            "verified": self.verified,
            "attempts": self.attempts,
        }


@dataclass
class RecoveryResult:
    """A recovered, re-attached program plus the recovery report."""

    program: DurableProgram
    report: RecoveryReport

    @property
    def output(self) -> Any:
        return self.program.output


class _RungFailure(Exception):
    """Internal: this ladder rung cannot produce a valid state."""


def _build_program(
    init: Dict[str, Any], registry: Any, resilience: Optional[ResiliencePolicy]
) -> ResilientProgram:
    """Rebuild the engine named by the init record, resiliently wrapped
    (replay must go through validated, transactional steps)."""
    source = init.get("program")
    if not isinstance(source, str):
        raise RecoveryError("init record carries no program source")
    options = init.get("options", {})
    term = parse(source, registry)
    if options.get("caching"):
        engine: Any = CachingIncrementalProgram(term, registry)
    else:
        engine = IncrementalProgram(
            term, registry, strict=bool(options.get("strict", False))
        )
    input_types = list(uncurry_fun_type(engine.program_type)[0])[: engine.arity]
    return ResilientProgram(
        engine, resilience or ResiliencePolicy(), input_types=input_types
    )


def _aborted_starts(records: List[JournalRecord]) -> Set[int]:
    """Start offsets of step records whose effect never committed (the
    immediately following record is a matching abort marker)."""
    aborted: Set[int] = set()
    for record, successor in zip(records, records[1:]):
        if (
            record.payload.get("type") == "step"
            and successor.payload.get("type") == "abort"
            and successor.payload.get("step") == record.payload.get("step")
        ):
            aborted.add(record.start)
    return aborted


def _replay_suffix(
    program: ResilientProgram,
    records: List[JournalRecord],
    start_offset: int,
    aborted: Set[int],
    through_step: Optional[int] = None,
) -> Tuple[int, int, bool, Optional[int], int, Optional[int]]:
    """Apply every committed step record at offset >= ``start_offset``.

    With ``through_step`` set, step records numbered ``>= through_step``
    are *trimmed* instead of applied: a sharded run acknowledges steps
    in a root manifest after journaling them, so a crash in between
    leaves a record the coordinator never acknowledged -- replaying it
    would put this shard ahead of the consistent cut.

    Returns ``(applied, skipped, dropped_tail, last_applied_end,
    trimmed, trim_start)``.  Raises ``_RungFailure`` on anything that
    contradicts the snapshot the replay started from.
    """
    applied = 0
    skipped = 0
    trimmed = 0
    trim_start: Optional[int] = None
    last_applied_end: Optional[int] = None
    final_start = records[-1].start if records else None
    for record in records:
        if record.start < start_offset:
            continue
        kind = record.payload.get("type")
        if kind == "abort":
            continue
        if kind == "init":
            raise _RungFailure(
                f"unexpected init record at offset {record.start} inside "
                "the replay suffix (manifest offset is stale)"
            )
        if kind != "step":
            raise _RungFailure(
                f"unknown journal record type {kind!r} at offset {record.start}"
            )
        if record.start in aborted:
            skipped += 1
            continue
        recorded_step = record.payload.get("step")
        if (
            through_step is not None
            and isinstance(recorded_step, int)
            and recorded_step >= through_step
        ):
            trimmed += 1
            if trim_start is None:
                trim_start = record.start
            continue
        if recorded_step != program.steps:
            raise _RungFailure(
                f"journal record at offset {record.start} is step "
                f"{recorded_step!r} but the restored state is at step "
                f"{program.steps} (snapshot and journal disagree)"
            )
        try:
            changes = [
                decode_value(change) for change in record.payload["changes"]
            ]
            program.step(*changes)
        except Exception as error:
            if record.start == final_start:
                # Write-ahead tail: the record was journaled but the
                # engine step never committed before the crash.
                return applied, skipped, True, last_applied_end, trimmed, trim_start
            raise _RungFailure(
                f"replay of step {recorded_step!r} at offset "
                f"{record.start} failed: {error}"
            ) from error
        applied += 1
        last_applied_end = record.end
    return applied, skipped, False, last_applied_end, trimmed, trim_start


def recover(
    directory: str,
    registry: Any = None,
    policy: Optional[DurabilityPolicy] = None,
    resilience: Optional[ResiliencePolicy] = None,
    verify: Optional[bool] = None,
    through_step: Optional[int] = None,
) -> RecoveryResult:
    """Recover a :class:`DurableProgram` from ``directory``.

    ``through_step`` caps replay at an externally-acknowledged step
    count (exclusive): journal records numbered at or beyond it are
    trimmed from both the recovered state and the on-disk log.  The
    sharded recovery (:func:`repro.parallel.recovery.recover_sharded`)
    passes each shard its slot of the root manifest's consistent cut so
    no shard resurfaces ahead of what the router acknowledged.

    Raises :class:`~repro.errors.RecoveryError` when every ladder rung
    fails; the error's ``details['attempts']`` lists each rung's reason.
    """
    if registry is None:
        from repro.plugins.registry import standard_registry

        registry = standard_registry()
    policy = policy or DurabilityPolicy()
    if verify is None:
        verify = policy.verify_on_recover
    if _STATE.on:
        _ATTEMPTS.inc()

    path = journal_path(directory)
    if not os.path.exists(path):
        if _STATE.on:
            _FAILURES.inc()
        raise RecoveryError(f"no journal at {path!r}")
    scan: JournalScan = read_journal(path)
    records = scan.records
    if not records or records[0].payload.get("type") != "init":
        if _STATE.on:
            _FAILURES.inc()
        raise RecoveryError(
            f"journal {path!r} has no valid init record "
            f"({len(records)} valid records, {scan.invalid_bytes} torn bytes)"
        )
    init = records[0].payload
    if init.get("codec") != CODEC_VERSION:
        if _STATE.on:
            _FAILURES.inc()
        raise RecoveryError(
            f"journal was written by codec version {init.get('codec')!r}; "
            f"this build reads version {CODEC_VERSION}"
        )

    report = RecoveryReport(
        directory=directory,
        program=str(init.get("program")),
        journal_records=len(records),
        torn_bytes=scan.invalid_bytes,
    )
    aborted = _aborted_starts(records)

    # Ladder rungs: manifest snapshots newest-first, then the init record.
    rungs: List[Tuple[str, Optional[SnapshotEntry]]] = []
    try:
        for entry in reversed(load_manifest(directory)):
            if through_step is not None and entry.step > through_step:
                # The checkpoint itself lies beyond the acknowledged
                # cut; restoring it could not be trimmed back.
                continue
            rungs.append((entry.file, entry))
    except ReproError as error:
        report.attempts.append(
            {"rung": "manifest", "ok": False, "reason": str(error)}
        )
    rungs.append(("init", None))

    for rung_name, entry in rungs:
        try:
            program = _build_program(init, registry, resilience)
            if entry is not None:
                body = load_snapshot(directory, entry)
                inputs = [decode_value(item) for item in body["inputs"]]
                expected_output = decode_value(body["output"])
                program.initialize(*inputs)
                if program.output != expected_output:
                    raise _RungFailure(
                        "recomputation from the checkpointed inputs does "
                        "not reproduce the checkpointed output (corrupt "
                        "snapshot, or the live run had drifted)"
                    )
                _check_caches(program, body)
                program.fast_forward(int(body["step"]))
                start_offset = entry.journal_offset
            else:
                inputs = [decode_value(item) for item in init["inputs"]]
                expected_output = decode_value(init["output"])
                program.initialize(*inputs)
                if program.output != expected_output:
                    raise _RungFailure(
                        "the base run does not reproduce the journaled "
                        "initial output (corrupt init record or changed "
                        "primitives)"
                    )
                start_offset = records[0].end
            applied, skipped, dropped_tail, last_end, trimmed, trim_start = (
                _replay_suffix(
                    program, records, start_offset, aborted, through_step
                )
            )
            if verify and not program.verify():
                raise _RungFailure(
                    "recovered output diverged from recomputation "
                    "(Eq. 1 fails on the replayed state)"
                )
        except (_RungFailure, ReproError, KeyError, TypeError, ValueError) as error:
            report.attempts.append(
                {"rung": rung_name, "ok": False, "reason": str(error)}
            )
            if _STATE.on:
                _FALLBACKS.inc()
            continue
        report.attempts.append({"rung": rung_name, "ok": True, "reason": None})
        report.snapshot_used = entry.file if entry is not None else None
        report.steps = program.steps
        report.replayed_steps = applied
        report.skipped_aborts = skipped
        report.trimmed_steps = trimmed
        report.dropped_tail_step = dropped_tail
        report.verified = True if verify else None
        if _STATE.on:
            _REPLAYED.inc(applied)
        durable = _reattach(
            program,
            directory,
            policy,
            init,
            records,
            dropped_tail,
            last_end,
            trim_start,
        )
        return RecoveryResult(program=durable, report=report)

    if _STATE.on:
        _FAILURES.inc()
    raise RecoveryError(
        f"recovery exhausted every rung for {directory!r}",
        attempts=[attempt["reason"] for attempt in report.attempts],
    )


def _check_caches(program: ResilientProgram, body: Dict[str, Any]) -> None:
    """Cross-validate checkpointed intermediate caches against the ones
    rebuilt by re-initialization (caching engine only)."""
    caches = body.get("caches")
    if not caches:
        return
    engine = program.program
    reader = getattr(engine, "cached_value", None)
    if reader is None:
        return
    from repro.semantics.thunk import force

    for name, encoded in caches.items():
        try:
            rebuilt = force(reader(name))
        except KeyError:
            raise _RungFailure(
                f"checkpoint names intermediate cache {name!r} the rebuilt "
                "program does not have (program or ANF drift)"
            )
        if rebuilt != decode_value(encoded):
            raise _RungFailure(
                f"checkpointed intermediate cache {name!r} does not match "
                "the value rebuilt from the checkpointed inputs"
            )


def _reattach(
    program: ResilientProgram,
    directory: str,
    policy: DurabilityPolicy,
    init: Dict[str, Any],
    records: List[JournalRecord],
    dropped_tail: bool,
    last_applied_end: Optional[int],
    trim_start: Optional[int] = None,
) -> DurableProgram:
    """Reopen the journal for append (repairing the torn tail) and, when
    the final record was dropped as an uncommitted write-ahead entry --
    or records were trimmed beyond a ``through_step`` cap -- truncate
    them away too so the on-disk log matches the adopted state."""
    path = journal_path(directory)
    truncate_at: Optional[int] = None
    if trim_start is not None:
        truncate_at = trim_start
    elif dropped_tail and records:
        truncate_at = records[-1].start
    if truncate_at is not None:
        with open(path, "r+b") as handle:
            handle.truncate(truncate_at)
            handle.flush()
            os.fsync(handle.fileno())
    journal, _ = Journal.open(path, fsync=policy.journal_fsync)
    return DurableProgram._attach(
        program,
        directory,
        policy,
        str(init.get("program")),
        journal,
        meta=init.get("meta"),
    )


__all__ = ["RecoveryReport", "RecoveryResult", "recover"]
