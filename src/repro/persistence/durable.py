"""Durability wiring: journal every step, checkpoint every N.

``DurableProgram`` wraps an engine (or its resilient wrapper) the same
way :class:`~repro.incremental.resilient.ResilientProgram` wraps one:
it delegates the semantics and adds an orthogonal guarantee.  Here the
guarantee is write-ahead durability:

* ``initialize`` starts a fresh journal with an ``init`` record carrying
  the program source, engine options, the encoded initial inputs, and
  the base output -- everything recovery needs to rebuild the run from
  nothing -- then writes checkpoint 0;
* ``step`` appends the encoded changes to the journal *before* touching
  the engine (write-ahead: a crash after the append replays the step, a
  crash during it tears the tail and loses only that step); a step the
  engine rejects gets an ``abort`` marker so replay skips it;
* every ``snapshot_every`` committed steps a checkpoint is written
  atomically and old ones are pruned down to ``keep_snapshots``.

Because changes are encoded before the journal is touched, a change the
codec cannot represent (e.g. a function change) fails the step *before*
any state -- durable or in-memory -- is modified.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.lang.pretty import pretty
from repro.observability import metrics as _metrics
from repro.persistence.codec import CODEC_VERSION, encode_value
from repro.persistence.journal import Journal, journal_path
from repro.persistence.snapshot import write_snapshot

_STATE = _metrics.STATE
_STEPS_JOURNALED = _metrics.GLOBAL_REGISTRY.counter(
    "persistence.journal.steps_journaled"
)
_ABORTS = _metrics.GLOBAL_REGISTRY.counter("persistence.journal.aborts")


@dataclass
class DurabilityPolicy:
    """Tunable knobs of the durability layer.

    journal_fsync:
        ``"always"`` -- fsync after every journal append (each committed
        step survives power loss); ``"never"`` -- flush without fsync
        (each step survives process death only).
    snapshot_every:
        Write a checkpoint every N committed steps (0 = only the initial
        checkpoint; recovery then replays the whole journal).
    keep_snapshots:
        Prune checkpoints beyond the newest K (minimum 2 once pruning is
        on -- the recovery ladder needs a previous rung to fall back to).
    verify_on_recover:
        After recovery, check the recovered output against from-scratch
        recomputation (Eq. 1 applied to the replayed state) before
        declaring success.
    """

    journal_fsync: str = "always"
    snapshot_every: int = 0
    keep_snapshots: int = 3
    verify_on_recover: bool = True

    def __post_init__(self) -> None:
        if self.journal_fsync not in ("always", "never"):
            raise ValueError(
                f"journal_fsync must be 'always' or 'never', "
                f"got {self.journal_fsync!r}"
            )
        if self.snapshot_every < 0:
            raise ValueError("snapshot_every must be >= 0")
        if self.keep_snapshots < 0:
            raise ValueError("keep_snapshots must be >= 0")


def _engine_of(program: Any) -> Any:
    """The underlying engine of a possibly-wrapped program."""
    return getattr(program, "program", program)


class DurableProgram:
    """A write-ahead-journaled, checkpointed program wrapper."""

    def __init__(
        self,
        program: Any,
        directory: str,
        policy: Optional[DurabilityPolicy] = None,
        source: Optional[str] = None,
        meta: Optional[Dict[str, Any]] = None,
    ):
        self.program = program
        self.directory = directory
        self.policy = policy or DurabilityPolicy()
        engine = _engine_of(program)
        self.source = source if source is not None else pretty(engine.term)
        self.meta = dict(meta) if meta else {}
        self.journal: Optional[Journal] = None

    # -- recovery re-attachment -------------------------------------------

    @classmethod
    def _attach(
        cls,
        program: Any,
        directory: str,
        policy: DurabilityPolicy,
        source: str,
        journal: Journal,
        meta: Optional[Dict[str, Any]] = None,
    ) -> "DurableProgram":
        """Wrap an already-recovered program around its existing journal
        (no init record is written; appends continue at the repaired
        tail)."""
        durable = cls.__new__(cls)
        durable.program = program
        durable.directory = directory
        durable.policy = policy
        durable.source = source
        durable.meta = dict(meta) if meta else {}
        durable.journal = journal
        return durable

    # -- lifecycle ---------------------------------------------------------

    def initialize(self, *inputs: Any) -> Any:
        os.makedirs(self.directory, exist_ok=True)
        encoded_inputs = [encode_value(value) for value in inputs]
        output = self.program.initialize(*inputs)
        engine = _engine_of(self.program)
        self.journal = Journal.create(
            journal_path(self.directory), fsync=self.policy.journal_fsync
        )
        record: Dict[str, Any] = {
            "type": "init",
            "codec": CODEC_VERSION,
            "program": self.source,
            "options": {
                "caching": type(engine).__name__ == "CachingIncrementalProgram",
                "resilient": self.program is not engine,
                "strict": bool(getattr(engine, "strict", False)),
                "arity": engine.arity,
            },
            "inputs": encoded_inputs,
            "output": encode_value(output),
        }
        if self.meta:
            record["meta"] = self.meta
        self.journal.append(record)
        self.snapshot()
        return output

    def step(self, *changes: Any) -> Any:
        """A journaled step: write-ahead append, then the transactional
        engine step, then (periodically) a checkpoint."""
        if self.journal is None:
            raise RuntimeError("call initialize() before step()")
        step_index = self.program.steps
        record = {
            "type": "step",
            "step": step_index,
            "changes": [encode_value(change) for change in changes],
        }
        self.journal.append(record)
        if _STATE.on:
            _STEPS_JOURNALED.inc()
        try:
            output = self.program.step(*changes)
        except Exception:
            # The engine rolled the step back; mark the journal record
            # dead so replay skips it rather than re-raising mid-recovery.
            self.journal.append({"type": "abort", "step": step_index})
            if _STATE.on:
                _ABORTS.inc()
            raise
        every = self.policy.snapshot_every
        if every and self.program.steps % every == 0:
            self.snapshot()
        return output

    def snapshot(self) -> None:
        """Checkpoint the committed state at the current step boundary."""
        if self.journal is None:
            raise RuntimeError("call initialize() before snapshot()")
        state: Dict[str, Any] = {
            "inputs": [
                encode_value(value) for value in self.program.current_inputs()
            ],
            "output": encode_value(self.program.output),
        }
        caches = self._encodable_caches()
        if caches is not None:
            state["caches"] = caches
        write_snapshot(
            self.directory,
            state,
            step=self.program.steps,
            journal_offset=self.journal.offset,
            keep=self.policy.keep_snapshots,
        )

    def _encodable_caches(self) -> Optional[Dict[str, Any]]:
        """First-order intermediate caches of the caching engine, for
        recovery-time cross-validation.  Function-valued caches (partial
        applications named by ANF) are skipped -- they are rebuilt, not
        restored."""
        engine = _engine_of(self.program)
        names = getattr(engine, "cache_names", None)
        if names is None:
            return None
        encoded: Dict[str, Any] = {}
        for name in names():
            try:
                encoded[name] = encode_value(engine.cached_value(name))
            except Exception:
                continue
        return encoded

    def close(self) -> None:
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "DurableProgram":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- delegation --------------------------------------------------------

    @property
    def output(self) -> Any:
        return self.program.output

    @property
    def steps(self) -> int:
        return self.program.steps

    def current_inputs(self) -> Sequence[Any]:
        return self.program.current_inputs()

    def recompute(self) -> Any:
        return self.program.recompute()

    def verify(self) -> bool:
        return self.program.verify()

    @property
    def registry(self) -> Any:
        return self.program.registry


__all__ = ["DurabilityPolicy", "DurableProgram"]
