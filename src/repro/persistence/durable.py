"""Backwards-compatible home of the durability wrapper.

The implementation moved to :mod:`repro.runtime.durability` when the
wrapper zoo was collapsed into the composable middleware stack
(``repro.runtime``).  ``DurableProgram`` is now a thin alias of
:class:`~repro.runtime.durability.DurabilityLayer` kept so existing
imports, journal init records, and the recovery ladder keep working;
new code should assemble stacks via
:func:`repro.runtime.stack.build_stack` instead.
"""

from __future__ import annotations

from repro.runtime.durability import DurabilityLayer, DurabilityPolicy
from repro.runtime.middleware import engine_of as _engine_of  # noqa: F401


class DurableProgram(DurabilityLayer):
    """Alias of :class:`~repro.runtime.durability.DurabilityLayer`."""


__all__ = ["DurabilityPolicy", "DurableProgram"]
