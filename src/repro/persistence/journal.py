"""The append-only write-ahead change log.

One record per line, framed for torn-tail tolerance::

    00000042 9a1bc3ff {"type":"step","step":0,"changes":[...]}\\n
    ^^^^^^^^ ^^^^^^^^
    length   CRC-32 of the payload bytes (8 hex digits each)

The payload is the codec's canonical JSON (ASCII, so character count ==
byte count).  A reader walks records sequentially and stops at the first
record that fails *any* check -- short header, non-hex prefix, payload
shorter than declared, missing newline, CRC mismatch, or invalid JSON --
and reports the prefix before it as the valid extent.  A crash mid-write
(torn tail) therefore costs at most the record being written, never the
log; a bit flip mid-log costs the suffix from the flipped record on,
which recovery compensates for with checkpoints.

``fsync`` policy: ``"always"`` fsyncs after every append (a step is
durable the moment ``step`` returns -- survives power loss), ``"never"``
only flushes to the OS (survives process death, not the machine).  Both
flush, so another process -- a monitor, the kill-test harness -- always
sees complete records.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import JournalError
from repro.observability import metrics as _metrics
from repro.persistence.codec import canonical_json

_STATE = _metrics.STATE
_APPENDS = _metrics.GLOBAL_REGISTRY.counter("persistence.journal.appends")
_BYTES = _metrics.GLOBAL_REGISTRY.counter("persistence.journal.bytes_written")
_FSYNCS = _metrics.GLOBAL_REGISTRY.counter("persistence.journal.fsyncs")
_TRUNCATED_BYTES = _metrics.GLOBAL_REGISTRY.counter(
    "persistence.journal.truncated_bytes"
)
#: Wall time of one durable append (write + flush + fsync under the
#: "always" policy) -- the journal-fsync phase of a durable step's
#: latency breakdown.
_APPEND_WALL = _metrics.GLOBAL_REGISTRY.histogram(
    "persistence.journal.append_wall_time_s"
)

#: ``LLLLLLLL CCCCCCCC `` -- two 8-hex-digit fields and two spaces.
_HEADER_LEN = 18

FSYNC_POLICIES = ("always", "never")

JOURNAL_FILE = "journal.jsonl"


def journal_path(directory: str) -> str:
    return os.path.join(directory, JOURNAL_FILE)


@dataclass(frozen=True)
class JournalRecord:
    """One decoded record plus its byte extent in the file."""

    payload: Dict[str, Any]
    start: int
    end: int


@dataclass
class JournalScan:
    """The result of walking a journal file."""

    records: List[JournalRecord]
    #: Byte offset of the end of the last valid record (the safe
    #: truncation point).
    valid_offset: int
    #: Bytes past ``valid_offset`` (0 for a clean log).
    invalid_bytes: int

    @property
    def torn(self) -> bool:
        return self.invalid_bytes > 0


def _frame(payload: Dict[str, Any]) -> bytes:
    body = canonical_json(payload).encode("ascii")
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return b"%08x %08x " % (len(body), crc) + body + b"\n"


def read_journal(path: str) -> JournalScan:
    """Walk ``path``, returning every valid record and the torn extent.

    Never raises on corruption -- corruption is *data* to the recovery
    ladder.  Raises ``JournalError`` only when the file itself cannot be
    read.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as error:
        raise JournalError(f"cannot read journal {path!r}: {error}") from error
    records: List[JournalRecord] = []
    position = 0
    total = len(data)
    while position < total:
        header = data[position : position + _HEADER_LEN]
        if len(header) < _HEADER_LEN or header[8:9] != b" " or header[17:18] != b" ":
            break
        try:
            length = int(header[0:8], 16)
            crc = int(header[9:17], 16)
        except ValueError:
            break
        body_start = position + _HEADER_LEN
        body = data[body_start : body_start + length]
        if len(body) < length:
            break
        if data[body_start + length : body_start + length + 1] != b"\n":
            break
        if (zlib.crc32(body) & 0xFFFFFFFF) != crc:
            break
        try:
            payload = json.loads(body.decode("ascii"))
        except (UnicodeDecodeError, ValueError):
            break
        if not isinstance(payload, dict):
            break
        end = body_start + length + 1
        records.append(JournalRecord(payload=payload, start=position, end=end))
        position = end
    return JournalScan(
        records=records, valid_offset=position, invalid_bytes=total - position
    )


class Journal:
    """An open, append-only journal handle."""

    def __init__(self, path: str, fsync: str = "always", _truncate: bool = False):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        self.path = path
        self.fsync = fsync
        mode = "wb" if _truncate else "ab"
        try:
            self._handle = open(path, mode)
        except OSError as error:
            raise JournalError(f"cannot open journal {path!r}: {error}") from error
        self._offset = self._handle.tell()

    # -- constructors ------------------------------------------------------

    @classmethod
    def create(cls, path: str, fsync: str = "always") -> "Journal":
        """Start a fresh journal, discarding any existing file."""
        return cls(path, fsync=fsync, _truncate=True)

    @classmethod
    def open(cls, path: str, fsync: str = "always") -> Tuple["Journal", JournalScan]:
        """Open an existing journal for append, repairing a torn tail.

        The file is truncated to the last valid record boundary first, so
        a crash mid-write never poisons subsequent appends.
        """
        scan = read_journal(path)
        if scan.torn:
            if _STATE.on:
                _TRUNCATED_BYTES.inc(scan.invalid_bytes)
            with open(path, "r+b") as handle:
                handle.truncate(scan.valid_offset)
                handle.flush()
                os.fsync(handle.fileno())
        journal = cls(path, fsync=fsync)
        return journal, scan

    # -- appending ---------------------------------------------------------

    @property
    def offset(self) -> int:
        """Byte offset of the journal's end (the next record's start)."""
        return self._offset

    def append(self, payload: Dict[str, Any]) -> Tuple[int, int]:
        """Durably append one record; returns its ``(start, end)`` extent."""
        frame = _frame(payload)
        start = self._offset
        began = time.perf_counter() if _STATE.on else 0.0
        try:
            self._handle.write(frame)
            self._handle.flush()
            if self.fsync == "always":
                os.fsync(self._handle.fileno())
                if _STATE.on:
                    _FSYNCS.inc()
        except OSError as error:
            raise JournalError(
                f"journal append failed at offset {start}: {error}"
            ) from error
        self._offset = start + len(frame)
        if _STATE.on:
            _APPENDS.inc()
            _BYTES.inc(len(frame))
            _APPEND_WALL.record(time.perf_counter() - began)
        return start, self._offset

    def sync(self) -> None:
        """Force bytes to stable storage regardless of policy."""
        self._handle.flush()
        os.fsync(self._handle.fileno())
        if _STATE.on:
            _FSYNCS.inc()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


__all__ = [
    "FSYNC_POLICIES",
    "JOURNAL_FILE",
    "Journal",
    "JournalRecord",
    "JournalScan",
    "journal_path",
    "read_journal",
]
