"""Runtime validation of Eq. (1) / Theorem 3.11 for concrete programs.

``check_derive_correctness`` evaluates both sides of

    f (a₁ ⊕ da₁) … (aₙ ⊕ daₙ)  =  f a₁ … aₙ ⊕ Derive(f) a₁ da₁ … aₙ daₙ

for a closed curried program ``f`` and concrete inputs/changes, raising
with a counterexample on disagreement.  The property-test suite drives
this over generated terms and inputs; the incremental engine uses the same
two sides in anger.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.data.change_values import oplus_value
from repro.derive.derive import derive_program
from repro.lang.terms import Term
from repro.plugins.registry import Registry
from repro.semantics.eval import apply_value, evaluate


class DeriveCorrectnessError(AssertionError):
    """Eq. (1) failed on a concrete input."""


def check_derive_correctness(
    term: Term,
    registry: Registry,
    inputs: Sequence[Any],
    changes: Sequence[Any],
    derived: Optional[Term] = None,
    specialize: bool = True,
) -> Any:
    """Check Eq. (1) for closed ``term`` at the given inputs and changes.

    Returns the (common) updated output on success.
    """
    if len(inputs) != len(changes):
        raise ValueError("inputs and changes must align")
    if derived is None:
        derived = derive_program(term, registry, specialize=specialize)

    program = evaluate(term)
    derivative = evaluate(derived)

    updated_inputs = [
        oplus_value(value, change) for value, change in zip(inputs, changes)
    ]
    recomputed = apply_value(program, *updated_inputs)

    original = apply_value(program, *inputs)
    interleaved = []
    for value, change in zip(inputs, changes):
        interleaved.append(value)
        interleaved.append(change)
    output_change = apply_value(derivative, *interleaved)
    incremental = oplus_value(original, output_change)

    if not _values_agree(recomputed, incremental):
        raise DeriveCorrectnessError(
            f"Eq. (1) failed:\n  inputs   = {inputs!r}\n"
            f"  changes  = {changes!r}\n"
            f"  f(a ⊕ da)          = {recomputed!r}\n"
            f"  f a ⊕ f' a da      = {incremental!r}"
        )
    return recomputed


def _values_agree(left: Any, right: Any) -> bool:
    from repro.semantics.values import FunctionValue

    if isinstance(left, FunctionValue) or isinstance(right, FunctionValue):
        raise TypeError(
            "cannot compare function outputs directly; "
            "check at a first-order result type instead"
        )
    return left == right
