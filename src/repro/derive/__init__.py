"""Static differentiation (Sec. 3.2) and its validation harness."""

from repro.derive.derive import DeriveError, derive, derive_program
from repro.derive.validate import check_derive_correctness

__all__ = [
    "DeriveError",
    "check_derive_correctness",
    "derive",
    "derive_program",
]
