"""The ``Derive`` source-to-source transformation (Fig. 4g).

    Derive(x)      = dx
    Derive(λx. t)  = λx dx. Derive(t)
    Derive(s t)    = Derive(s) t Derive(t)
    Derive(c)      = the plugin-supplied derivative of c

extended with the practical cases:

    Derive(let x = s in t) = let x = s; dx = Derive(s) in Derive(t)
    Derive(lit)            = a nil-change literal for lit's type

and with the static nil-change analysis of Sec. 4.2: at a fully applied
primitive spine ``c t₁ … tₙ`` whose plugin registers a specialization for
argument positions that are *closed terms* (closed ⇒ change is nil,
Thm. 2.10), the specialized -- typically self-maintainable -- derivative
is emitted instead of ``Derive(c) t₁ Derive(t₁) …``.

Hygiene: ``Derive`` names the change of ``x`` as ``dx``; source programs
must not bind variables starting with ``d``.  ``derive_program`` α-renames
offenders first (``prepare=True``).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ReproError
from repro.lang.infer import infer_type
from repro.lang.terms import App, Const, Lam, Let, Lit, Term, Var
from repro.lang.traversal import (
    bound_variables,
    free_variables,
    rename_d_variables,
    spine,
)
from repro.observability import metrics as _metrics
from repro.plugins.registry import Registry


class DeriveError(ReproError, ValueError):
    """Differentiation failed (hygiene violation or missing plugin data)."""


def derive(
    term: Term,
    registry: Registry,
    specialize: bool = True,
) -> Term:
    """Differentiate ``term`` (Fig. 4g).

    If ``Γ ⊢ t : τ`` then ``Γ, ΔΓ ⊢ Derive(t) : Δτ``: the result mentions
    ``x`` and ``dx`` for every free variable ``x`` of ``term``.

    ``specialize`` enables the Sec. 4.2 nil-change specializations; with
    it off, every primitive uses its generic derivative (the ablation
    benchmarks compare the two).
    """
    _check_hygiene(term)
    return _derive(term, registry, specialize, frozenset())


def _check_hygiene(term: Term) -> None:
    offenders = sorted(
        name
        for name in (free_variables(term) | bound_variables(term))
        if name.startswith("d")
    )
    if offenders:
        raise DeriveError(
            "variables must not start with 'd' (they would collide with "
            f"change names): {', '.join(offenders)}; "
            "use derive_program(..., prepare=True) to α-rename them"
        )


def _derive(
    term: Term,
    registry: Registry,
    specialize: bool,
    closed_vars: frozenset,
) -> Term:
    """``closed_vars`` propagates the Sec. 4.2 analysis: variables bound
    (by ``let``) to closed terms are themselves statically nil."""
    if isinstance(term, Var):
        return Var(f"d{term.name}")
    if isinstance(term, Lam):
        change_param_type = (
            registry.change_type(term.param_type)
            if term.param_type is not None
            else None
        )
        inner_closed = closed_vars - {term.param}
        return Lam(
            term.param,
            Lam(
                f"d{term.param}",
                _derive(term.body, registry, specialize, inner_closed),
                change_param_type,
            ),
            term.param_type,
        )
    if isinstance(term, App):
        if specialize:
            specialized = _try_specialize(term, registry, closed_vars)
            if specialized is not None:
                return specialized
        return App(
            App(_derive(term.fn, registry, specialize, closed_vars), term.arg),
            _derive(term.arg, registry, specialize, closed_vars),
        )
    if isinstance(term, Let):
        if _statically_nil(term.bound, closed_vars):
            inner_closed = closed_vars | {term.name}
        else:
            inner_closed = closed_vars - {term.name}
        return Let(
            term.name,
            term.bound,
            Let(
                f"d{term.name}",
                _derive(term.bound, registry, specialize, closed_vars),
                _derive(term.body, registry, specialize, inner_closed),
            ),
        )
    if isinstance(term, Const):
        spec = term.spec
        if spec.derivative is None and spec.arity == 0:
            # A ground constant's change is its nil change (Thm. 2.10);
            # plugins provide detectably-nil literals where possible.
            return Lit(
                registry.nil_change_literal(spec.value, spec.schema.type),
                registry.change_type(spec.schema.type),
            )
        return spec.derivative_term()
    if isinstance(term, Lit):
        return Lit(
            registry.nil_change_literal(term.value, term.type),
            registry.change_type(term.type),
        )
    raise DeriveError(f"unknown term node: {term!r}")


def _statically_nil(term: Term, closed_vars: frozenset) -> bool:
    """True if ``term``'s change is provably nil: every free variable is
    itself bound to a closed term (closed ⇒ nil change, Thm. 2.10)."""
    return free_variables(term) <= closed_vars


def _try_specialize(
    term: App, registry: Registry, closed_vars: frozenset
) -> Optional[Term]:
    """Apply the most specific matching derivative specialization at this
    application spine, if any (Sec. 4.2)."""
    head, arguments = spine(term)
    if not isinstance(head, Const):
        return None
    spec = head.spec
    if not spec.specializations or len(arguments) != spec.arity:
        return None
    nil_positions = {
        index
        for index, argument in enumerate(arguments)
        if _statically_nil(argument, closed_vars)
    }
    for specialization in spec.specializations:
        if specialization.nil_positions <= nil_positions:
            if _metrics.STATE.on:
                # The Sec. 4.2 nil-change analysis fired: count which
                # primitives get specialized (typically self-maintainable)
                # derivatives instead of generic ones.
                registry_metrics = _metrics.GLOBAL_REGISTRY
                registry_metrics.counter("derive.specializations").inc()
                registry_metrics.counter(
                    f"derive.specialization.{spec.name}"
                ).inc()
            return specialization.builder(
                arguments,
                lambda t: _derive(t, registry, True, closed_vars),
            )
    if _metrics.STATE.on:
        _metrics.GLOBAL_REGISTRY.counter("derive.generic_fallbacks").inc()
    return None


def derive_program(
    term: Term,
    registry: Registry,
    specialize: bool = True,
    prepare: bool = True,
    annotate: bool = False,
) -> Term:
    """Convenience front door: optionally α-rename ``d``-variables away,
    optionally run inference to annotate λ binders (so the derivative's
    binders carry change types), then differentiate."""
    if prepare:
        term = rename_d_variables(term)
    if annotate:
        term, _ = infer_type(term, require_ground=False)
    if not _metrics.STATE.on:
        return derive(term, registry, specialize)
    import time

    registry_metrics = _metrics.GLOBAL_REGISTRY
    specialized_before = registry_metrics.counter_value("derive.specializations")
    start = time.perf_counter()
    derived = derive(term, registry, specialize)
    registry_metrics.counter("derive.programs").inc()
    registry_metrics.histogram("derive.wall_time_s").record(
        time.perf_counter() - start
    )
    registry_metrics.histogram("derive.specializations_per_program").record(
        registry_metrics.counter_value("derive.specializations")
        - specialized_before
    )
    return derived
