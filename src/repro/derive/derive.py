"""The ``Derive`` source-to-source transformation (Fig. 4g).

    Derive(x)      = dx
    Derive(λx. t)  = λx dx. Derive(t)
    Derive(s t)    = Derive(s) t Derive(t)
    Derive(c)      = the plugin-supplied derivative of c

extended with the practical cases:

    Derive(let x = s in t) = let x = s; dx = Derive(s) in Derive(t)
    Derive(lit)            = a nil-change literal for lit's type

and with the static nil-change analysis of Sec. 4.2: at a fully applied
primitive spine ``c t₁ … tₙ`` whose plugin registers a specialization for
argument positions that are *closed terms* (closed ⇒ change is nil,
Thm. 2.10), the specialized -- typically self-maintainable -- derivative
is emitted instead of ``Derive(c) t₁ Derive(t₁) …``.

Hygiene: ``Derive`` names the change of ``x`` as ``dx``; source programs
must not bind variables starting with ``d``.  ``derive_program`` α-renames
offenders first (``prepare=True``).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.framework import AbstractEnv, Dataflow, nilness_analysis
from repro.errors import ReproError
from repro.lang.infer import infer_type
from repro.lang.terms import App, Const, Lam, Let, Lit, Term, Var
from repro.lang.traversal import (
    bound_variables,
    free_variables,
    intern_term,
    rename_d_variables,
    spine,
)
from repro.observability import metrics as _metrics
from repro.plugins.registry import Registry


class DeriveError(ReproError, ValueError):
    """Differentiation failed (hygiene violation or missing plugin data)."""


def derive(
    term: Term,
    registry: Registry,
    specialize: bool = True,
    nilness: Optional[Dataflow] = None,
) -> Term:
    """Differentiate ``term`` (Fig. 4g).

    If ``Γ ⊢ t : τ`` then ``Γ, ΔΓ ⊢ Derive(t) : Δτ``: the result mentions
    ``x`` and ``dx`` for every free variable ``x`` of ``term``.

    ``specialize`` enables the Sec. 4.2 nil-change specializations; with
    it off, every primitive uses its generic derivative (the ablation
    benchmarks compare the two).

    The Sec. 4.2 analysis itself is the shared dataflow framework's
    nilness instance; pass ``nilness`` to share one memoized analysis
    between ``Derive`` and other consumers (the linter does).
    """
    _check_hygiene(term)
    flow = nilness if nilness is not None else nilness_analysis()
    return _derive(term, registry, specialize, flow, flow.empty_env())


def _check_hygiene(term: Term) -> None:
    offenders = sorted(
        name
        for name in (free_variables(term) | bound_variables(term))
        if name.startswith("d")
    )
    if offenders:
        raise DeriveError(
            "variables must not start with 'd' (they would collide with "
            f"change names): {', '.join(offenders)}; "
            "use derive_program(..., prepare=True) to α-rename them"
        )


def _derive(
    term: Term,
    registry: Registry,
    specialize: bool,
    nilness: Dataflow,
    env: AbstractEnv,
) -> Term:
    """``env`` carries the Sec. 4.2 analysis facts: variables bound (by
    ``let``) to statically nil terms are themselves statically nil.
    Source positions ride along onto the nodes ``Derive`` introduces, so
    diagnostics about derivatives can point back at the program."""
    if isinstance(term, Var):
        return Var(f"d{term.name}", pos=term.pos)
    if isinstance(term, Lam):
        change_param_type = (
            registry.change_type(term.param_type)
            if term.param_type is not None
            else None
        )
        inner = nilness.extend_lam(env, term)
        # Binder roles are Derive metadata: downstream analyses classify
        # base vs. change parameters from these stamps instead of
        # guessing from the ``d`` spelling (which shadowing or renaming
        # could fake).
        return Lam(
            term.param,
            Lam(
                f"d{term.param}",
                _derive(term.body, registry, specialize, nilness, inner),
                change_param_type,
                pos=term.pos,
                role="change",
            ),
            term.param_type,
            pos=term.pos,
            role="base",
        )
    if isinstance(term, App):
        if specialize:
            specialized = _try_specialize(term, registry, nilness, env)
            if specialized is not None:
                return specialized
        return App(
            App(
                _derive(term.fn, registry, specialize, nilness, env),
                term.arg,
                pos=term.pos,
            ),
            _derive(term.arg, registry, specialize, nilness, env),
            pos=term.pos,
        )
    if isinstance(term, Let):
        inner = nilness.extend_let(env, term)
        return Let(
            term.name,
            term.bound,
            Let(
                f"d{term.name}",
                _derive(term.bound, registry, specialize, nilness, env),
                _derive(term.body, registry, specialize, nilness, inner),
                pos=term.pos,
            ),
            pos=term.pos,
        )
    if isinstance(term, Const):
        spec = term.spec
        if spec.derivative is None and spec.arity == 0:
            # A ground constant's change is its nil change (Thm. 2.10);
            # plugins provide detectably-nil literals where possible.
            return Lit(
                registry.nil_change_literal(spec.value, spec.schema.type),
                registry.change_type(spec.schema.type),
                pos=term.pos,
            )
        derived = spec.derivative_term()
        if isinstance(derived, Const) and term.pos is not None:
            return Const(derived.spec, pos=term.pos)
        return derived
    if isinstance(term, Lit):
        return Lit(
            registry.nil_change_literal(term.value, term.type),
            registry.change_type(term.type),
            pos=term.pos,
        )
    raise DeriveError(f"unknown term node: {term!r}")


def _try_specialize(
    term: App, registry: Registry, nilness: Dataflow, env: AbstractEnv
) -> Optional[Term]:
    """Apply the most specific matching derivative specialization at this
    application spine, if any (Sec. 4.2)."""
    head, arguments = spine(term)
    if not isinstance(head, Const):
        return None
    spec = head.spec
    if not spec.specializations or len(arguments) != spec.arity:
        return None
    nil_positions = {
        index
        for index, argument in enumerate(arguments)
        if not nilness.analyze(argument, env)
    }
    for specialization in spec.specializations:
        if specialization.nil_positions <= nil_positions:
            if _metrics.STATE.on:
                # The Sec. 4.2 nil-change analysis fired: count which
                # primitives get specialized (typically self-maintainable)
                # derivatives instead of generic ones.
                registry_metrics = _metrics.GLOBAL_REGISTRY
                registry_metrics.counter("derive.specializations").inc()
                registry_metrics.counter(
                    f"derive.specialization.{spec.name}"
                ).inc()
            return specialization.builder(
                arguments,
                lambda t: _derive(t, registry, True, nilness, env),
            )
    if _metrics.STATE.on:
        _metrics.GLOBAL_REGISTRY.counter("derive.generic_fallbacks").inc()
    return None


def derive_program(
    term: Term,
    registry: Registry,
    specialize: bool = True,
    prepare: bool = True,
    annotate: bool = False,
) -> Term:
    """Convenience front door: optionally α-rename ``d``-variables away,
    optionally run inference to annotate λ binders (so the derivative's
    binders carry change types), then differentiate."""
    if prepare:
        term = rename_d_variables(term)
    if annotate:
        term, _ = infer_type(term, require_ground=False)
    # Hash-cons so repeated derivations of equal programs hit the
    # id-keyed memo tables (nilness facts, optimizer caches) instead of
    # re-analyzing structurally identical subtrees.
    term = intern_term(term)
    if not _metrics.STATE.on:
        return intern_term(derive(term, registry, specialize))
    import time

    registry_metrics = _metrics.GLOBAL_REGISTRY
    specialized_before = registry_metrics.counter_value("derive.specializations")
    start = time.perf_counter()
    derived = intern_term(derive(term, registry, specialize))
    registry_metrics.counter("derive.programs").inc()
    registry_metrics.histogram("derive.wall_time_s").record(
        time.perf_counter() - start
    )
    registry_metrics.histogram("derive.specializations_per_program").record(
        registry_metrics.counter_value("derive.specializations")
        - specialized_before
    )
    return derived
