"""The incrementality observatory: metrics, spans, and step traces.

The paper's claim is asymptotic -- derivatives react in O(|change|) --
and this package makes the engine *report* the quantities that claim is
about, instead of only timing it:

* :mod:`repro.observability.metrics` -- counters / gauges / histograms
  in a process-global registry, with a zero-overhead null sink while
  disabled;
* :mod:`repro.observability.trace` -- nested wall-time spans recorded as
  structured events (one root span per ``initialize``/``step``);
* :mod:`repro.observability.report` -- human-readable renderings;
* :mod:`repro.observability.export` -- JSON-lines export for dashboards
  and CI artifacts.

Usage::

    from repro.observability import observing

    with observing() as obs:
        program.step(dxs, dys)
        span = obs.tracer.last("engine.step")
        span["oplus_count"], span["thunks_forced"]

Collection is off by default; every instrumented hot path guards on a
single flag read, so the disabled cost is one branch per site.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.observability import metrics as _metrics
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    enabled,
    global_registry,
    set_enabled,
    sink,
)
from repro.observability.trace import NULL_SPAN, Span, Tracer


class Observability:
    """The process-global bundle of metrics registry + tracer."""

    def __init__(self) -> None:
        self.metrics = global_registry()
        self.tracer = Tracer()

    @property
    def enabled(self) -> bool:
        return _metrics.STATE.on

    def enable(self) -> None:
        set_enabled(True)

    def disable(self) -> None:
        set_enabled(False)

    def reset(self) -> None:
        """Drop all recorded metrics and spans (keeps the enabled flag)."""
        self.metrics.reset()
        self.tracer.reset()


_HUB = Observability()


def get_observability() -> Observability:
    """The process-global observability hub."""
    return _HUB


@contextmanager
def observing(reset: bool = False) -> Iterator[Observability]:
    """Enable collection for the duration of the block.

    ``reset=True`` clears previously recorded metrics and spans on entry,
    giving the block a clean slate.  The previous enabled state is
    restored on exit (so nesting and test isolation behave).
    """
    hub = _HUB
    previous = hub.enabled
    if reset:
        hub.reset()
    hub.enable()
    try:
        yield hub
    finally:
        set_enabled(previous)


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "Observability",
    "Span",
    "Tracer",
    "enabled",
    "get_observability",
    "global_registry",
    "observing",
    "set_enabled",
    "sink",
]
