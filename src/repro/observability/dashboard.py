"""The live telemetry dashboard behind ``repro dashboard``.

One :func:`build_dashboard` call measures a grid of traffic cells
(workload × backend × profile) with
:func:`repro.traffic.harness.measure_profile`, attaches SLO verdicts
from the checked-in budgets plus the trend history, and returns a
JSON-ready payload.  :func:`render_dashboard` turns that payload into
the text view: a top line with the overall SLO verdict, one table row
per cell (p50/p99/p999, changes/sec, verdict, a unicode sparkline of
recent per-event latencies), then a per-cell drill-down with the
derivative/⊕ phase split and any budget reasons.

The same payload serves ``--format json`` verbatim, so CI can archive
the dashboard as an artifact and diff it across runs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.observability.slo import (
    DEFAULT_SLO_PATH,
    DEFAULT_TREND_PATH,
    SloError,
    evaluate_slo,
    load_slo,
    load_trend,
)

#: The default measurement grid: three traffic shapes x both backends.
DEFAULT_PROFILES = ("uniform", "zipf-burst", "hot-churn")
DEFAULT_BACKENDS = ("compiled", "interpreted")
DEFAULT_WORKLOADS = ("histogram",)

#: Stack variants measured on top of the compiled backend, as extra grid
#: rows: ``caching`` swaps in the self-adjusting engine
#: (cell backend ``compiled+caching``), ``durable`` journals every step
#: (cell backend ``compiled+durable``, with a ``journal`` phase in the
#: drill-down).  Keys are CLI ``--variant`` values.
VARIANT_KWARGS: Dict[str, Dict[str, Any]] = {
    "caching": {"engine": "caching"},
    "durable": {"durable": "never"},
}
DEFAULT_VARIANTS = ("caching", "durable")

#: Drill-down phase order; ``journal`` only appears for durable cells.
PHASE_NAMES = ("derivative", "oplus", "journal")

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 32) -> str:
    """A unicode block sparkline of ``values``, downsampled to ``width``.

    Scaling is min..max over the window, so the sparkline shows *shape*
    (bursts, storms, warm-up decay), not absolute level -- the table
    columns next to it carry the numbers.
    """
    points = [float(v) for v in values if v is not None]
    if not points:
        return ""
    if len(points) > width:
        # Bucket-max downsampling: tail spikes must survive.
        bucketed = []
        for index in range(width):
            lo = index * len(points) // width
            hi = max(lo + 1, (index + 1) * len(points) // width)
            bucketed.append(max(points[lo:hi]))
        points = bucketed
    low, high = min(points), max(points)
    span = high - low
    if span <= 0:
        return _SPARK_BLOCKS[0] * len(points)
    top = len(_SPARK_BLOCKS) - 1
    return "".join(
        _SPARK_BLOCKS[min(top, int((value - low) / span * top))]
        for value in points
    )


def build_dashboard(
    profiles: Optional[Sequence[str]] = None,
    backends: Optional[Sequence[str]] = None,
    workloads: Optional[Sequence[str]] = None,
    size: int = 1_000,
    steps: int = 48,
    seed: int = 7,
    slo_path: Optional[str] = None,
    trend_path: Optional[str] = None,
    registry: Any = None,
    variants: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """Measure the cell grid and assemble the dashboard payload.

    ``variants`` selects the extra stack rows measured on the compiled
    backend (default :data:`DEFAULT_VARIANTS`); pass an empty sequence
    to measure the bare backends only.
    """
    from repro.bench import run_stamp
    from repro.plugins.registry import standard_registry
    from repro.traffic.harness import measure_profile

    profiles = tuple(profiles) if profiles else DEFAULT_PROFILES
    backends = tuple(backends) if backends else DEFAULT_BACKENDS
    workloads = tuple(workloads) if workloads else DEFAULT_WORKLOADS
    variants = tuple(variants) if variants is not None else DEFAULT_VARIANTS
    for variant in variants:
        if variant not in VARIANT_KWARGS:
            raise ValueError(
                f"unknown dashboard variant {variant!r} "
                f"(available: {', '.join(sorted(VARIANT_KWARGS))})"
            )
    registry = registry if registry is not None else standard_registry()
    cells: List[Dict[str, Any]] = []
    for workload in workloads:
        for backend in backends:
            for profile in profiles:
                cells.append(
                    measure_profile(
                        registry,
                        workload=workload,
                        size=size,
                        backend=backend,
                        profile=profile,
                        steps=steps,
                        seed=seed,
                    )
                )
        # Variant rows ride on the compiled backend: the stack layers are
        # backend-agnostic, so one backend's worth of rows covers them.
        for variant in variants:
            for profile in profiles:
                cells.append(
                    measure_profile(
                        registry,
                        workload=workload,
                        size=size,
                        backend="compiled",
                        profile=profile,
                        steps=steps,
                        seed=seed,
                        **VARIANT_KWARGS[variant],
                    )
                )
    slo_report: Optional[Dict[str, Any]] = None
    slo_error: Optional[str] = None
    resolved_slo = slo_path if slo_path is not None else DEFAULT_SLO_PATH
    resolved_trend = trend_path if trend_path is not None else DEFAULT_TREND_PATH
    trend = load_trend(resolved_trend)
    try:
        policy = load_slo(resolved_slo)
    except SloError as error:
        # A missing budget file demotes the dashboard to measurements
        # only; it must not turn a monitoring view into a crash.
        slo_error = str(error)
    else:
        slo_report = evaluate_slo(policy, cells, trend)
    return {
        "kind": "dashboard",
        **run_stamp(),
        "size": size,
        "steps": steps,
        "seed": seed,
        "workloads": list(workloads),
        "backends": list(backends),
        "profiles": list(profiles),
        "variants": list(variants),
        "slo_path": resolved_slo,
        "trend_path": resolved_trend,
        "trend_runs": len(trend),
        "cells": cells,
        "slo": slo_report,
        "slo_error": slo_error,
    }


def _fmt_ms(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 100:
        return f"{value:.0f}ms"
    return f"{value:.2f}ms"


def _fmt_tp(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:,.0f}"


_STATUS_MARK = {"ok": "ok", "violated": "FAIL", "unbudgeted": "??"}


def render_dashboard(data: Dict[str, Any]) -> str:
    """The text view of a :func:`build_dashboard` payload."""
    lines: List[str] = []
    cells = data.get("cells", [])
    slo = data.get("slo")
    lines.append(
        f"repro dashboard -- {len(cells)} cells, "
        f"size={data.get('size')}, steps={data.get('steps')}, "
        f"seed={data.get('seed')}  ({data.get('generated_at', '?')}, "
        f"git {data.get('git_sha', 'unknown')[:12]})"
    )
    if slo is not None:
        verdict = "PASS" if slo["ok"] else "FAIL"
        lines.append(
            f"SLO {verdict}: {slo['violations']} violated, "
            f"{slo['unbudgeted']} unbudgeted "
            f"(budgets {data.get('slo_path')}, "
            f"trend {data.get('trend_runs', 0)} prior runs)"
        )
    elif data.get("slo_error"):
        lines.append(f"SLO skipped: {data['slo_error']}")
    lines.append("")
    verdict_by_cell: Dict[str, Dict[str, Any]] = {}
    if slo is not None:
        verdict_by_cell = {v["cell"]: v for v in slo["verdicts"]}
    name_width = max(
        [len(_cell_name(cell)) for cell in cells] + [len("cell")]
    )
    header = (
        f"{'cell':<{name_width}}  {'p50':>8} {'p99':>8} {'p999':>8} "
        f"{'chg/s':>8}  {'slo':<4}  latency"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for cell in cells:
        name = _cell_name(cell)
        latency = cell.get("latency_ms") or {}
        verdict = verdict_by_cell.get(name)
        mark = _STATUS_MARK.get(verdict["status"], "?") if verdict else "-"
        lines.append(
            f"{name:<{name_width}}  "
            f"{_fmt_ms(latency.get('p50')):>8} "
            f"{_fmt_ms(latency.get('p99')):>8} "
            f"{_fmt_ms(latency.get('p999')):>8} "
            f"{_fmt_tp(cell.get('changes_per_s')):>8}  "
            f"{mark:<4}  "
            f"{sparkline(cell.get('latency_history_ms', ()))}"
        )
    for cell in cells:
        name = _cell_name(cell)
        lines.append("")
        lines.append(name)
        phases = cell.get("phases_ms") or {}
        phase_bits = []
        for phase_name in PHASE_NAMES:
            phase = phases.get(phase_name) or {}
            if phase.get("count"):
                phase_bits.append(
                    f"{phase_name} p50={_fmt_ms(phase.get('p50_ms'))} "
                    f"p99={_fmt_ms(phase.get('p99_ms'))} "
                    f"(n={phase['count']})"
                )
        if phase_bits:
            lines.append("  phases: " + " | ".join(phase_bits))
        lines.append(
            f"  changes={cell.get('changes')} reads={cell.get('reads')} "
            f"rejected={cell.get('rejected_changes')} "
            f"coalesced={cell.get('coalesced_changes')} "
            f"wall={cell.get('wall_s', 0):.3f}s"
        )
        verdict = verdict_by_cell.get(name)
        if verdict is None:
            continue
        budget = verdict.get("budget")
        if budget is not None:
            limits = []
            if budget.get("p99_ms") is not None:
                limits.append(f"p99<={budget['p99_ms']}ms")
            if budget.get("p999_ms") is not None:
                limits.append(f"p999<={budget['p999_ms']}ms")
            if budget.get("min_changes_per_s") is not None:
                limits.append(f"chg/s>={budget['min_changes_per_s']}")
            lines.append(
                f"  slo [{verdict['status']}]: " + " ".join(limits)
            )
        else:
            lines.append("  slo: no matching budget")
        if verdict.get("trend_baseline_p99_ms") is not None:
            lines.append(
                "  trend baseline p99: "
                f"{_fmt_ms(verdict['trend_baseline_p99_ms'])}"
                + (" (REGRESSED)" if verdict.get("regressed") else "")
            )
        for reason in verdict.get("reasons", ()):
            lines.append(f"    ! {reason}")
    return "\n".join(lines)


def _cell_name(cell: Dict[str, Any]) -> str:
    return f"{cell['workload']}/{cell['backend']}/{cell['profile']}"


__all__ = [
    "DEFAULT_BACKENDS",
    "DEFAULT_PROFILES",
    "DEFAULT_VARIANTS",
    "DEFAULT_WORKLOADS",
    "PHASE_NAMES",
    "VARIANT_KWARGS",
    "build_dashboard",
    "render_dashboard",
    "sparkline",
]
