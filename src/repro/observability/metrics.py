"""Counters, gauges, and histograms with a process-global registry.

The paper's evaluation counts *operations*, not just wall-clock: Fig. 7's
claim is that a derivative reacts in O(|change|), and the way to check it
is to count ⊕ applications, primitive calls, and thunk forcings per step.
This module is the sink those counts flow into.

Design constraints:

* **Zero overhead when disabled.**  Instrumentation sites guard on
  ``enabled()`` (a single attribute read) before touching any metric, or
  go through ``sink()`` which returns a shared no-op registry while
  observability is off.  The hot paths of the interpreter pay nothing
  beyond one branch.
* **Process-global registry.**  Spans and counters from the engine, the
  optimizer, ``Derive``, and the change algebra all land in one place, so
  a step's ⊕ count is a *delta* of the global counter around the step.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Tuple

from repro.observability.quantiles import DEFAULT_QUANTILES, QuantileSketch


class Counter:
    """A monotonically-increasing (per reset) integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}={self.value})"


class Gauge:
    """A point-in-time value (queue depths, cache sizes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Any = 0

    def set(self, value: Any) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}={self.value})"


class Histogram:
    """A streaming summary of observed values, percentiles included.

    Aggregates (count/total/min/max) are exact; percentiles come from a
    :class:`~repro.observability.quantiles.QuantileSketch` -- exact for
    short streams, P²-estimated (O(1) memory) once the stream outgrows
    the sketch's buffer.  The tracked quantiles (p50/p90/p99/p999) are
    what the SLO layer and the dashboard read.
    """

    __slots__ = ("name", "count", "total", "min", "max", "sketch")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.sketch = QuantileSketch(DEFAULT_QUANTILES)

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.sketch.record(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """The ``q``-quantile of the recorded values (None while empty)."""
        return self.sketch.quantile(q)

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self.sketch.reset()

    def summary(self) -> Dict[str, Any]:
        summary: Dict[str, Any] = {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }
        summary.update(self.sketch.summary())
        return summary

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.6g})"


class MetricsRegistry:
    """A named collection of metrics; get-or-create by name."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- get-or-create -----------------------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    # -- introspection -----------------------------------------------------

    def counter_value(self, name: str) -> int:
        metric = self._counters.get(name)
        return metric.value if metric is not None else 0

    def counters(self, prefix: str = "") -> Dict[str, int]:
        return {
            name: metric.value
            for name, metric in sorted(self._counters.items())
            if name.startswith(prefix)
        }

    def gauges(self, prefix: str = "") -> Dict[str, Any]:
        return {
            name: metric.value
            for name, metric in sorted(self._gauges.items())
            if name.startswith(prefix)
        }

    def histograms(self, prefix: str = "") -> Dict[str, Dict[str, Any]]:
        return {
            name: metric.summary()
            for name, metric in sorted(self._histograms.items())
            if name.startswith(prefix)
        }

    def snapshot(self) -> Dict[str, Any]:
        """All metrics as plain data (stable ordering, JSON-friendly)."""
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": self.histograms(),
        }

    def iter_metrics(self) -> Iterator[Tuple[str, str, Any]]:
        """Yield ``(kind, name, value-or-summary)`` rows for exporters."""
        for name, counter in sorted(self._counters.items()):
            yield "counter", name, counter.value
        for name, gauge in sorted(self._gauges.items()):
            yield "gauge", name, gauge.value
        for name, histogram in sorted(self._histograms.items()):
            yield "histogram", name, histogram.summary()

    def reset(self) -> None:
        for metric in self._counters.values():
            metric.reset()
        for metric in self._gauges.values():
            metric.reset()
        for metric in self._histograms.values():
            metric.reset()


# -- the null sink ------------------------------------------------------------

class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:  # pragma: no cover - trivial
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: Any) -> None:  # pragma: no cover - trivial
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def record(self, value: float) -> None:  # pragma: no cover - trivial
        pass


class NullRegistry(MetricsRegistry):
    """A registry that accepts everything and records nothing.

    Returned by ``sink()`` while observability is disabled so call sites
    can be written unconditionally; shared singletons mean no allocation
    per call either.
    """

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null")

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def histogram(self, name: str) -> Histogram:
        return self._null_histogram


NULL_REGISTRY = NullRegistry()

#: The process-global registry every instrumented layer reports into.
GLOBAL_REGISTRY = MetricsRegistry()


class _State:
    """Mutable enabled flag with one-attribute-read access on hot paths."""

    __slots__ = ("on",)

    def __init__(self) -> None:
        self.on = False


STATE = _State()


def enabled() -> bool:
    """Is observability collection currently on?"""
    return STATE.on


def set_enabled(on: bool) -> None:
    STATE.on = bool(on)


def global_registry() -> MetricsRegistry:
    return GLOBAL_REGISTRY


def sink() -> MetricsRegistry:
    """The registry instrumentation should write to *right now*: the
    global registry when enabled, the shared null sink otherwise."""
    return GLOBAL_REGISTRY if STATE.on else NULL_REGISTRY
