"""Nested wall-time spans recorded as structured events.

A ``Span`` is one timed region (an ``initialize``, a ``step``, one
binding's derivative inside a step) plus free-form attributes (⊕ counts,
thunk deltas, primitive-call deltas).  Spans nest: the tracer keeps a
stack, so a span opened while another is active becomes its child, and
only *root* spans are retained on the tracer -- the engine's per-step
span owns its derivative/⊕ children.

The tracer is bounded (``max_spans``): long incremental runs keep the
most recent roots instead of growing without limit, which is what a
production deployment needs from step-level tracing.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Deque, Dict, Iterator, List, Optional


class Span:
    """One timed, attributed, possibly-nested region of execution."""

    __slots__ = ("name", "attributes", "children", "start", "end")

    def __init__(self, name: str, attributes: Optional[Dict[str, Any]] = None):
        self.name = name
        self.attributes: Dict[str, Any] = dict(attributes) if attributes else {}
        self.children: List["Span"] = []
        self.start = time.perf_counter()
        self.end: Optional[float] = None

    @property
    def duration(self) -> float:
        """Seconds from start to finish (to now if still open)."""
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start

    def set(self, **attributes: Any) -> "Span":
        self.attributes.update(attributes)
        return self

    def __getitem__(self, key: str) -> Any:
        return self.attributes[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.attributes.get(key, default)

    def child(self, name: str) -> Optional["Span"]:
        """The first child span named ``name``, if any."""
        for child in self.children:
            if child.name == name:
                return child
        return None

    def finish(self) -> None:
        if self.end is None:
            self.end = time.perf_counter()

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-friendly; attribute values must be)."""
        record: Dict[str, Any] = {
            "name": self.name,
            "duration_s": self.duration,
        }
        if self.attributes:
            record["attributes"] = dict(self.attributes)
        if self.children:
            record["children"] = [child.to_dict() for child in self.children]
        return record

    def __repr__(self) -> str:
        state = f"{self.duration * 1e3:.3f}ms" if self.end is not None else "open"
        return f"Span({self.name!r}, {state}, {self.attributes!r})"


class NullSpan(Span):
    """A shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null")

    def set(self, **attributes: Any) -> "Span":
        return self

    def finish(self) -> None:  # pragma: no cover - trivial
        pass


NULL_SPAN = NullSpan()


class Tracer:
    """Collects finished root spans (bounded) and tracks the open stack."""

    def __init__(self, max_spans: int = 4096):
        self.spans: Deque[Span] = deque(maxlen=max_spans)
        self._stack: List[Span] = []

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        opened = Span(name, attributes)
        parent = self._stack[-1] if self._stack else None
        self._stack.append(opened)
        try:
            yield opened
        finally:
            opened.finish()
            self._stack.pop()
            if parent is not None:
                parent.children.append(opened)
            else:
                self.spans.append(opened)

    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def last(self, name: Optional[str] = None) -> Optional[Span]:
        """The most recent finished root span (optionally by name)."""
        if name is None:
            return self.spans[-1] if self.spans else None
        for span in reversed(self.spans):
            if span.name == name:
                return span
        return None

    def named(self, name: str) -> List[Span]:
        return [span for span in self.spans if span.name == name]

    def reset(self) -> None:
        self.spans.clear()
        self._stack.clear()
