"""Declarative latency budgets and the SLO verdict engine.

``slo.json`` (checked in at the repo root) declares, per
(workload, backend, traffic profile) cell, what the build must hold:
a p99 (optionally p999) per-step latency ceiling and a changes/sec
floor.  This module loads those budgets, matches them against measured
traffic cells (:func:`repro.traffic.harness.measure_profile` rows), and
renders verdicts -- plus a *regression* check against the committed
trend history (``BENCH_trend.jsonl``), so a build can fail CI by
getting slower even while still inside its absolute budget.

Budget matching supports ``"*"`` wildcards per field; the most specific
budget wins (exact fields beat wildcards, ties broken by declaration
order).  A cell with no matching budget gets an ``"unbudgeted"``
verdict -- visible, never failing.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ReproError

#: Default location of the budget file, relative to the repo root.
DEFAULT_SLO_PATH = "slo.json"

#: Default location of the append-only trend history.
DEFAULT_TREND_PATH = "BENCH_trend.jsonl"


class SloError(ReproError, ValueError):
    """The budget file is malformed or unreadable."""


@dataclass(frozen=True)
class LatencyBudget:
    """One declared budget cell (``"*"`` matches any value)."""

    workload: str = "*"
    backend: str = "*"
    profile: str = "*"
    p99_ms: Optional[float] = None
    p999_ms: Optional[float] = None
    min_changes_per_s: Optional[float] = None

    def matches(self, workload: str, backend: str, profile: str) -> bool:
        return (
            self.workload in ("*", workload)
            and self.backend in ("*", backend)
            and self.profile in ("*", profile)
        )

    @property
    def specificity(self) -> int:
        return sum(
            1 for fieldvalue in (self.workload, self.backend, self.profile)
            if fieldvalue != "*"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "backend": self.backend,
            "profile": self.profile,
            "p99_ms": self.p99_ms,
            "p999_ms": self.p999_ms,
            "min_changes_per_s": self.min_changes_per_s,
        }


@dataclass(frozen=True)
class RegressionPolicy:
    """When does "slower than history" become a failure?

    A cell regresses when its p99 exceeds ``factor`` times the median
    p99 of the same cell across the trend history, provided at least
    ``min_history`` prior entries exist (fewer and the check abstains
    -- young trend files never fail).
    """

    factor: float = 3.0
    min_history: int = 3


@dataclass
class SloPolicy:
    """The parsed budget file."""

    budgets: List[LatencyBudget] = field(default_factory=list)
    regression: RegressionPolicy = field(default_factory=RegressionPolicy)
    version: int = 1

    def budget_for(
        self, workload: str, backend: str, profile: str
    ) -> Optional[LatencyBudget]:
        """The most specific matching budget (None when unbudgeted)."""
        best: Optional[LatencyBudget] = None
        for budget in self.budgets:
            if not budget.matches(workload, backend, profile):
                continue
            if best is None or budget.specificity > best.specificity:
                best = budget
        return best


def load_slo(path: str = DEFAULT_SLO_PATH) -> SloPolicy:
    """Parse ``slo.json`` into an :class:`SloPolicy`."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
    except OSError as error:
        raise SloError(f"cannot read SLO budget file {path!r}: {error}") from error
    except json.JSONDecodeError as error:
        raise SloError(f"malformed SLO budget file {path!r}: {error}") from error
    if not isinstance(raw, dict) or not isinstance(raw.get("budgets"), list):
        raise SloError(
            f"SLO budget file {path!r} must be an object with a 'budgets' list"
        )
    budgets = []
    for index, entry in enumerate(raw["budgets"]):
        if not isinstance(entry, dict):
            raise SloError(f"budget #{index} in {path!r} is not an object")
        unknown = set(entry) - {
            "workload", "backend", "profile",
            "p99_ms", "p999_ms", "min_changes_per_s",
        }
        if unknown:
            raise SloError(
                f"budget #{index} in {path!r} has unknown fields: "
                f"{', '.join(sorted(unknown))}"
            )
        budgets.append(LatencyBudget(**entry))
    regression_raw = raw.get("regression", {})
    regression = RegressionPolicy(
        factor=float(regression_raw.get("factor", 3.0)),
        min_history=int(regression_raw.get("min_history", 3)),
    )
    return SloPolicy(
        budgets=budgets,
        regression=regression,
        version=int(raw.get("version", 1)),
    )


# -- verdicts ------------------------------------------------------------------

def _cell_key(row: Dict[str, Any]) -> str:
    return f"{row['workload']}/{row['backend']}/{row['profile']}"


def evaluate_cell(
    policy: SloPolicy,
    row: Dict[str, Any],
    history: Sequence[Dict[str, Any]] = (),
) -> Dict[str, Any]:
    """The verdict for one measured traffic cell.

    ``row`` is a :func:`~repro.traffic.harness.measure_profile` row;
    ``history`` is prior trend *cells* for the same
    workload/backend/profile (each with at least ``p99_ms``).  Status is
    ``"ok"``, ``"violated"``, or ``"unbudgeted"``; every breached limit
    contributes a human-readable reason.
    """
    budget = policy.budget_for(row["workload"], row["backend"], row["profile"])
    latency = row.get("latency_ms") or {}
    p99 = latency.get("p99")
    p999 = latency.get("p999")
    throughput = row.get("changes_per_s")
    reasons: List[str] = []
    if budget is not None:
        if budget.p99_ms is not None and (p99 is None or p99 > budget.p99_ms):
            reasons.append(
                f"p99 {p99 if p99 is None else format(p99, '.3f')}ms "
                f"exceeds budget {budget.p99_ms}ms"
            )
        if budget.p999_ms is not None and (
            p999 is None or p999 > budget.p999_ms
        ):
            reasons.append(
                f"p999 {p999 if p999 is None else format(p999, '.3f')}ms "
                f"exceeds budget {budget.p999_ms}ms"
            )
        if budget.min_changes_per_s is not None and (
            throughput is None or throughput < budget.min_changes_per_s
        ):
            reasons.append(
                f"throughput "
                f"{throughput if throughput is None else format(throughput, '.0f')}"
                f" changes/s below floor {budget.min_changes_per_s}"
            )
    regressed = False
    baseline_p99: Optional[float] = None
    prior = [
        entry["p99_ms"]
        for entry in history
        if entry.get("p99_ms") is not None
    ]
    if p99 is not None and len(prior) >= policy.regression.min_history:
        baseline_p99 = statistics.median(prior)
        if baseline_p99 > 0 and p99 > policy.regression.factor * baseline_p99:
            regressed = True
            reasons.append(
                f"p99 {p99:.3f}ms regressed beyond "
                f"{policy.regression.factor}x the trend median "
                f"{baseline_p99:.3f}ms"
            )
    if budget is None and not regressed:
        status = "unbudgeted" if not reasons else "violated"
    else:
        status = "ok" if not reasons else "violated"
    return {
        "cell": _cell_key(row),
        "workload": row["workload"],
        "backend": row["backend"],
        "profile": row["profile"],
        "status": status,
        "reasons": reasons,
        "budget": budget.to_dict() if budget is not None else None,
        "measured": {
            "p50_ms": latency.get("p50"),
            "p99_ms": p99,
            "p999_ms": p999,
            "changes_per_s": throughput,
        },
        "trend_baseline_p99_ms": baseline_p99,
        "regressed": regressed,
    }


def evaluate_slo(
    policy: SloPolicy,
    rows: Sequence[Dict[str, Any]],
    trend: Sequence[Dict[str, Any]] = (),
) -> Dict[str, Any]:
    """Verdicts for a batch of measured cells.

    ``trend`` is the parsed ``BENCH_trend.jsonl`` (one entry per prior
    run, each carrying a ``cells`` list); each measured row is compared
    against its own cell's history.  The report's ``ok`` is the single
    boolean the CI gate reads.
    """
    history_by_cell: Dict[str, List[Dict[str, Any]]] = {}
    for entry in trend:
        for cell in entry.get("cells", ()):
            key = f"{cell.get('workload')}/{cell.get('backend')}/{cell.get('profile')}"
            history_by_cell.setdefault(key, []).append(cell)
    verdicts = [
        evaluate_cell(policy, row, history_by_cell.get(_cell_key(row), ()))
        for row in rows
    ]
    violations = [v for v in verdicts if v["status"] == "violated"]
    return {
        "ok": not violations,
        "verdicts": verdicts,
        "violations": len(violations),
        "unbudgeted": sum(1 for v in verdicts if v["status"] == "unbudgeted"),
        "regression": {
            "factor": policy.regression.factor,
            "min_history": policy.regression.min_history,
        },
    }


# -- trend history -------------------------------------------------------------

def trend_cell(row: Dict[str, Any]) -> Dict[str, Any]:
    """The compact per-cell record a trend entry stores."""
    latency = row.get("latency_ms") or {}
    return {
        "workload": row["workload"],
        "backend": row["backend"],
        "profile": row["profile"],
        "n": row.get("n"),
        "steps": row.get("steps"),
        "p50_ms": latency.get("p50"),
        "p99_ms": latency.get("p99"),
        "p999_ms": latency.get("p999"),
        "changes_per_s": row.get("changes_per_s"),
    }


def load_trend(path: str = DEFAULT_TREND_PATH) -> List[Dict[str, Any]]:
    """The parsed trend history ([] when the file does not exist yet)."""
    from repro.observability.export import read_jsonl

    try:
        return read_jsonl(path)
    except FileNotFoundError:
        return []


def append_trend_entry(
    path: str,
    rows: Sequence[Dict[str, Any]],
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Append one run's cells to the trend history; returns the entry."""
    entry: Dict[str, Any] = dict(meta or {})
    entry["cells"] = [trend_cell(row) for row in rows]
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True))
        handle.write("\n")
    return entry


__all__ = [
    "DEFAULT_SLO_PATH",
    "DEFAULT_TREND_PATH",
    "LatencyBudget",
    "RegressionPolicy",
    "SloError",
    "SloPolicy",
    "append_trend_entry",
    "evaluate_cell",
    "evaluate_slo",
    "load_slo",
    "load_trend",
    "trend_cell",
]
