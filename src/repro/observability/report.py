"""Human-readable renderings of step traces and metric summaries."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.observability.metrics import MetricsRegistry, global_registry
from repro.observability.trace import Span


def _format_seconds(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f}ms"
    return f"{seconds * 1e6:.1f}µs"


def _format_calls(calls: Dict[str, int], limit: int = 4) -> str:
    if not calls:
        return "none"
    ranked = sorted(calls.items(), key=lambda item: (-item[1], item[0]))
    shown = ", ".join(f"{name}×{count}" for name, count in ranked[:limit])
    if len(ranked) > limit:
        shown += f", +{len(ranked) - limit} more"
    return shown


def format_step_record(record: Dict[str, Any]) -> str:
    """One step record (see ``export.step_record``) as one line."""
    parts = [f"step {record.get('step', '?')}:"]
    parts.append(_format_seconds(record.get("wall_time_s")))
    if "derivative_time_s" in record:
        parts.append(f"(derivative {_format_seconds(record['derivative_time_s'])})")
    if "oplus_count" in record:
        parts.append(f"⊕={record['oplus_count']}")
    if "output_change_size" in record:
        parts.append(f"|dout|={record['output_change_size']}")
    created = record.get("thunks_created")
    forced = record.get("thunks_forced")
    if created is not None or forced is not None:
        parts.append(f"thunks {created or 0} created / {forced or 0} forced")
    if record.get("inputs_materialized"):
        parts.append(f"inputs materialized={record['inputs_materialized']}")
    if "pending_depth" in record:
        parts.append(f"pending={record['pending_depth']}")
    if "caches_materialized" in record:
        parts.append(
            f"caches {record.get('caches_lazy', 0)} lazy / "
            f"{record['caches_materialized']} materialized"
        )
    if "primitive_calls" in record:
        parts.append(f"prims: {_format_calls(record['primitive_calls'])}")
    return "  ".join(parts)


def format_trace(records: Iterable[Dict[str, Any]]) -> str:
    """A step-record stream as text, with an aggregate footer."""
    lines: List[str] = []
    total_time = 0.0
    total_oplus = 0
    total_forced = 0
    count = 0
    for record in records:
        lines.append(format_step_record(record))
        total_time += record.get("wall_time_s", 0.0)
        total_oplus += record.get("oplus_count", 0)
        total_forced += record.get("thunks_forced", 0)
        count += 1
    if count:
        lines.append(
            f"total: {count} steps in {_format_seconds(total_time)}  "
            f"(mean {_format_seconds(total_time / count)}, "
            f"⊕={total_oplus}, thunks forced={total_forced})"
        )
    else:
        lines.append("no steps recorded")
    return "\n".join(lines)


def format_span(span: Span, indent: int = 0) -> str:
    """A span tree, one line per span, indented by depth."""
    pad = "  " * indent
    attributes = ""
    if span.attributes:
        rendered = ", ".join(
            f"{key}={value!r}" for key, value in sorted(span.attributes.items())
        )
        attributes = f"  [{rendered}]"
    lines = [f"{pad}{span.name}: {_format_seconds(span.duration)}{attributes}"]
    for child in span.children:
        lines.append(format_span(child, indent + 1))
    return "\n".join(lines)


def format_metrics(registry: Optional[MetricsRegistry] = None) -> str:
    """All metrics in ``registry`` (default: global) as aligned text."""
    registry = registry if registry is not None else global_registry()
    lines: List[str] = []
    counters = registry.counters()
    if counters:
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name, value in counters.items():
            lines.append(f"  {name:<{width}}  {value}")
    gauges = registry.gauges()
    if gauges:
        lines.append("gauges:")
        width = max(len(name) for name in gauges)
        for name, value in gauges.items():
            lines.append(f"  {name:<{width}}  {value}")
    histograms = registry.histograms()
    if histograms:
        lines.append("histograms:")
        for name, summary in histograms.items():
            parts = [
                f"  {name}  n={summary['count']}",
                f"mean={_format_seconds(summary['mean'])}",
                f"min={_format_seconds(summary['min'])}",
                f"max={_format_seconds(summary['max'])}",
            ]
            for key in ("p50", "p90", "p99", "p999"):
                if summary.get(key) is not None:
                    parts.append(f"{key}={_format_seconds(summary[key])}")
            lines.append(" ".join(parts))
    return "\n".join(lines) if lines else "no metrics recorded"
