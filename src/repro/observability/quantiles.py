"""Streaming quantile estimation for latency telemetry.

The SLO layer asks questions about *tails* -- "does p99 step latency
stay under budget?" -- and tails are exactly what count/total/min/max
summaries cannot answer.  This module provides the percentile engine:

* :class:`P2Quantile` -- the P² algorithm (Jain & Chlamtac, CACM 1985):
  a single-quantile estimator holding five markers, O(1) memory and
  O(1) per observation, no buckets to pre-size;
* :class:`QuantileSketch` -- a fixed set of tracked quantiles that is
  *exact* while the sample count is small (all samples kept and sorted
  on demand) and switches to the P² markers once the stream outgrows
  the exact buffer.  Small runs -- tests, ``--quick`` benches, short
  traces -- therefore report true percentiles, while unbounded
  production streams stay O(1) per quantile.

Estimates are deterministic functions of the observation sequence (no
randomized sampling), which keeps seeded traffic runs byte-reproducible.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

#: The quantiles every latency sketch tracks by default.
DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.99, 0.999)

#: Summary-key spelling for a quantile: 0.5 -> "p50", 0.999 -> "p999".
def quantile_key(q: float) -> str:
    """The conventional percentile label: 0.5 → p50, 0.999 → p999."""
    digits = f"{q:.10f}".split(".")[1].rstrip("0") or "0"
    # Percentiles are two digits by convention (p50, p90); only finer
    # quantiles grow a third digit (p999, p9999).
    if len(digits) == 1:
        digits += "0"
    return f"p{digits}"


def exact_quantile(ordered: Sequence[float], q: float) -> float:
    """The ``q``-quantile of an already-sorted sample, by linear
    interpolation between closest ranks (the numpy default)."""
    if not ordered:
        raise ValueError("no samples")
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


class P2Quantile:
    """One quantile, estimated with the P² five-marker algorithm.

    Exact until five observations have arrived; after that the markers
    track the quantile with piecewise-parabolic height adjustment.
    """

    __slots__ = ("q", "count", "_heights", "_positions", "_desired", "_rates")

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self.count = 0
        self._heights: List[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._rates = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def record(self, value: float) -> None:
        self.count += 1
        heights = self._heights
        if self.count <= 5:
            heights.append(value)
            heights.sort()
            return
        positions = self._positions
        # 1. Find the cell the observation falls into and bump the
        #    marker positions above it.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        for index in range(cell + 1, 5):
            positions[index] += 1.0
        for index in range(5):
            self._desired[index] += self._rates[index]
        # 2. Nudge the three interior markers toward their desired
        #    positions, adjusting heights parabolically.
        for index in range(1, 4):
            drift = self._desired[index] - positions[index]
            if (drift >= 1.0 and positions[index + 1] - positions[index] > 1.0) or (
                drift <= -1.0 and positions[index - 1] - positions[index] < -1.0
            ):
                direction = 1.0 if drift >= 1.0 else -1.0
                candidate = self._parabolic(index, direction)
                if heights[index - 1] < candidate < heights[index + 1]:
                    heights[index] = candidate
                else:
                    heights[index] = self._linear(index, direction)
                positions[index] += direction

    def _parabolic(self, index: int, direction: float) -> float:
        heights = self._heights
        positions = self._positions
        below = positions[index] - positions[index - 1]
        above = positions[index + 1] - positions[index]
        span = positions[index + 1] - positions[index - 1]
        return heights[index] + direction / span * (
            (below + direction)
            * (heights[index + 1] - heights[index])
            / above
            + (above - direction)
            * (heights[index] - heights[index - 1])
            / below
        )

    def _linear(self, index: int, direction: float) -> float:
        heights = self._heights
        positions = self._positions
        step = int(direction)
        return heights[index] + direction * (
            heights[index + step] - heights[index]
        ) / (positions[index + step] - positions[index])

    def value(self) -> Optional[float]:
        """The current estimate (exact below five observations)."""
        if self.count == 0:
            return None
        if self.count <= 5:
            return exact_quantile(self._heights, self.q)
        return self._heights[2]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"P2Quantile(q={self.q}, n={self.count}, est={self.value()})"


class QuantileSketch:
    """A fixed family of quantiles over one value stream.

    Every observation feeds both an exact buffer (up to ``exact_limit``
    samples) and one :class:`P2Quantile` per tracked quantile.  While
    the stream fits the buffer, *any* quantile is answered exactly;
    beyond it, the tracked quantiles answer from their P² markers and
    the buffer is dropped.
    """

    __slots__ = ("quantiles", "count", "_estimators", "_exact", "_exact_limit")

    def __init__(
        self,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
        exact_limit: int = 512,
    ):
        self.quantiles: Tuple[float, ...] = tuple(quantiles)
        self.count = 0
        self._estimators = {q: P2Quantile(q) for q in self.quantiles}
        self._exact: Optional[List[float]] = []
        self._exact_limit = exact_limit

    def record(self, value: float) -> None:
        self.count += 1
        for estimator in self._estimators.values():
            estimator.record(value)
        if self._exact is not None:
            self._exact.append(value)
            if len(self._exact) > self._exact_limit:
                self._exact = None  # outgrown: markers take over

    def quantile(self, q: float) -> Optional[float]:
        """The ``q``-quantile estimate; None while empty.

        Exact whenever the stream still fits the exact buffer (any
        ``q``); otherwise answered by the tracked P² estimator --
        untracked quantiles then raise ``KeyError``.
        """
        if self.count == 0:
            return None
        if self._exact is not None:
            return exact_quantile(sorted(self._exact), q)
        return self._estimators[q].value()

    @property
    def is_exact(self) -> bool:
        return self._exact is not None

    def summary(self) -> Dict[str, Any]:
        """``{"p50": ..., "p90": ..., ...}`` for the tracked quantiles."""
        return {
            quantile_key(q): self.quantile(q) for q in self.quantiles
        }

    def reset(self) -> None:
        self.count = 0
        self._estimators = {q: P2Quantile(q) for q in self.quantiles}
        self._exact = []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuantileSketch(n={self.count}, "
            f"{'exact' if self.is_exact else 'p2'}, {self.summary()})"
        )


__all__ = [
    "DEFAULT_QUANTILES",
    "P2Quantile",
    "QuantileSketch",
    "exact_quantile",
    "quantile_key",
]
