"""JSON-lines export of spans and metrics.

One record per line, each self-describing via a ``"type"`` field:

    {"type": "step", "step": 0, "wall_time_s": ..., "oplus_count": ...}
    {"type": "span", "name": "engine.initialize", "duration_s": ...}
    {"type": "counter", "name": "changes.oplus", "value": 42}
    {"type": "histogram", "name": "engine.step.wall_time_s",
     "summary": {"count": 5, "mean": ..., "min": ..., "max": ...}}

The format is append-friendly (benchmarks and the CLI both emit into it)
and trivially consumed by ``jq``, pandas, or a log shipper.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, TextIO, Union

from repro.observability.metrics import MetricsRegistry, global_registry
from repro.observability.trace import Span

#: Span attributes copied verbatim onto flattened step records.
_STEP_ATTRIBUTES = (
    "step",
    "oplus_count",
    "compose_count",
    "output_change_size",
    "thunks_created",
    "thunks_forced",
    "thunk_hits",
    "primitive_calls",
    "pending_depth",
    "inputs_materialized",
    "caches_lazy",
    "caches_materialized",
)


def span_record(span: Span) -> Dict[str, Any]:
    """A generic span as one JSON-friendly record."""
    record = span.to_dict()
    record["type"] = "span"
    return record


def step_record(span: Span) -> Dict[str, Any]:
    """Flatten a per-step span into the canonical step record.

    The record carries wall time, the derivative/⊕ child timings, and
    every per-step delta the engine attached (⊕ count, thunk deltas,
    primitive-call deltas, queue depths).
    """
    record: Dict[str, Any] = {"type": "step", "wall_time_s": span.duration}
    for key in _STEP_ATTRIBUTES:
        if key in span.attributes:
            record[key] = span.attributes[key]
    derivative = span.child("derivative")
    if derivative is not None:
        record["derivative_time_s"] = derivative.duration
    oplus = span.child("oplus")
    if oplus is not None:
        record["oplus_time_s"] = oplus.duration
    bindings = [child for child in span.children if child.name == "binding"]
    if bindings:
        record["bindings"] = [
            {
                "name": child.get("binding"),
                "duration_s": child.duration,
                "change_size": child.get("change_size"),
            }
            for child in bindings
        ]
    return record


def metrics_records(
    registry: Optional[MetricsRegistry] = None,
) -> List[Dict[str, Any]]:
    """Every metric in ``registry`` (default: the global one) as records."""
    registry = registry if registry is not None else global_registry()
    records: List[Dict[str, Any]] = []
    for kind, name, value in registry.iter_metrics():
        if kind == "histogram":
            records.append({"type": kind, "name": name, "summary": value})
        else:
            records.append({"type": kind, "name": name, "value": value})
    return records


def write_jsonl(
    destination: Union[str, TextIO],
    records: Iterable[Dict[str, Any]],
) -> int:
    """Write ``records`` to a path or file object, one JSON per line.

    Returns the number of records written.
    """
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            return write_jsonl(handle, records)
    count = 0
    for record in records:
        destination.write(json.dumps(record, sort_keys=True, default=repr))
        destination.write("\n")
        count += 1
    return count


def read_jsonl(source: Union[str, TextIO]) -> List[Dict[str, Any]]:
    """Parse a JSON-lines stream back into records (blank lines skipped).

    The inverse of :func:`write_jsonl` for everything it writes from
    plain data; values serialized via the ``repr`` fallback come back as
    strings.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return read_jsonl(handle)
    return [json.loads(line) for line in source if line.strip()]


def export_metrics(
    path: str, registry: Optional[MetricsRegistry] = None
) -> int:
    """Dump a registry's metrics to ``path`` as JSON lines."""
    return write_jsonl(path, metrics_records(registry))
