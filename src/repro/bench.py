"""``repro bench`` -- the Fig. 7 sweep, traffic cells, and the SLO gate.

Runs the paper's two headline workloads (the Sec. 1 ``grand_total`` and
the Sec. 4.5 wordcount ``histogram``) over a size sweep, under each
execution mode:

* ``interpreted``        -- the environment-passing AST interpreter;
* ``compiled``           -- the staged closure compiler (the default
  engine backend);
* ``compiled+coalesce``  -- the compiled backend fed bursty change
  streams through :meth:`step_batch`, which composes each burst into a
  single change before invoking the derivative.

For every (workload, size, mode) cell it reports per-reaction latency
(mean and p99 over a warm change stream), from-scratch recomputation
time, and the incremental-vs-recompute speedup.

On top of the sweep, ``--profile NAME`` adds *traffic cells*: the named
adversarial traffic profiles (:mod:`repro.traffic`) run against both
backends, reporting p50/p99/p999 latency and changes/sec.  ``--sla``
turns the traffic cells into a gate -- the measured cells are checked
against the declarative budgets in ``slo.json`` *and* against the
committed trend history ``BENCH_trend.jsonl`` (regression = p99 beyond
a factor of the cell's trend median), the run is appended to the trend
when it passes, and any violation exits non-zero.

The JSON report (``BENCH_fig7.json`` by default) is the artifact the
docs and the CI ``bench-smoke``/``slo-gate`` jobs read; every payload
is stamped with the wall-clock timestamp and git SHA so trend entries
stay attributable.  See ``docs/performance.md`` for the schema.

Usage::

    python -m repro bench --quick --output BENCH_fig7.json
    python -m repro bench --quick --sla --profile uniform --profile zipf-burst
"""

from __future__ import annotations

import json
import random
import statistics
import subprocess
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.data.bag import Bag
from repro.data.change_values import GroupChange
from repro.data.group import BAG_GROUP
from repro.incremental.engine import IncrementalProgram
from repro.mapreduce.skeleton import (
    grand_total_term,
    histogram_term,
    word_count_term,
)
from repro.mapreduce.workloads import (
    ChangeScript,
    add_word_change,
    make_corpus,
    remove_word_change,
)
from repro.plugins.registry import Registry, standard_registry

#: Size sweeps (number of elements / word occurrences).  ``--quick``
#: keeps the endpoints only, which is enough for the smoke gate's
#: backend-ratio check while staying in CI's time budget.
FULL_SIZES = (1_000, 4_000, 16_000, 64_000)
QUICK_SIZES = (1_000, 16_000)

MODES = ("interpreted", "compiled", "compiled+coalesce")

#: Changes per burst in the coalesced mode.  Each burst is one
#: ``step_batch`` call; the per-reaction latency it reports is the burst
#: wall time divided by the burst size, directly comparable to the
#: per-change modes.
BURST = 8


def _histogram_workload(
    registry: Registry, size: int
) -> Tuple[Any, Tuple[Any, ...], List[Tuple[Any, ...]]]:
    corpus = make_corpus(size, vocabulary_size=1_000, seed=42)
    stream = [
        (add_word_change(step % 10, 7 + step % 13),) for step in range(64)
    ]
    return histogram_term(registry), (corpus.documents,), stream


def _grand_total_workload(
    registry: Registry, size: int
) -> Tuple[Any, Tuple[Any, ...], List[Tuple[Any, ...]]]:
    xs = Bag.from_iterable(range(size))
    ys = Bag.from_iterable(range(size, 2 * size))
    stream = [
        (
            GroupChange(BAG_GROUP, Bag.of(step % 7)),
            GroupChange(BAG_GROUP, Bag.of(size + step % 5).negate()),
        )
        for step in range(64)
    ]
    return grand_total_term(registry), (xs, ys), stream


def wordcount_vocabulary(size: int) -> int:
    """The wide vocabulary the wordcount cells run with: ~size/4 distinct
    words, so the histogram (and hence the per-step ⊕ against it) keeps
    growing with the corpus instead of saturating at 1000 words.  This
    is the regime the shard sweep exercises -- per-step cost is
    dominated by the output-map copy, which partitioning divides by N."""
    return max(64, size // 4)


def _wordcount_workload(
    registry: Registry, size: int
) -> Tuple[Any, Tuple[Any, ...], List[Tuple[Any, ...]]]:
    corpus = make_corpus(
        size, vocabulary_size=wordcount_vocabulary(size), seed=11
    )
    stream = [
        (change,) for change in ChangeScript(corpus, length=64, seed=7)
    ]
    return word_count_term(registry), (corpus.documents,), stream


WORKLOADS: Dict[
    str, Callable[[Registry, int], Tuple[Any, Tuple[Any, ...], List[Tuple[Any, ...]]]]
] = {
    "histogram": _histogram_workload,
    "grand_total": _grand_total_workload,
    "wordcount": _wordcount_workload,
}


def _percentile(samples: Sequence[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _measure_cell(
    registry: Registry, workload: str, size: int, mode: str
) -> Dict[str, Any]:
    term, inputs, stream = WORKLOADS[workload](registry, size)
    backend = "interpreted" if mode == "interpreted" else "compiled"
    program = IncrementalProgram(term, registry, backend=backend)
    program.initialize(*inputs)

    # Warm-up: a few reactions so allocator/caches settle before timing.
    for row in stream[:4]:
        program.step(*row)

    samples: List[float] = []
    if mode == "compiled+coalesce":
        for start in range(0, len(stream), BURST):
            burst = stream[start : start + BURST]
            began = time.perf_counter()
            program.step_batch(burst, coalesce=True)
            elapsed = time.perf_counter() - began
            samples.extend([elapsed / len(burst)] * len(burst))
    else:
        for row in stream:
            began = time.perf_counter()
            program.step(*row)
            samples.append(time.perf_counter() - began)

    recompute = min(
        (lambda t0: (program.recompute(), time.perf_counter() - t0)[1])(
            time.perf_counter()
        )
        for _ in range(3)
    )
    mean = statistics.fmean(samples)
    return {
        "workload": workload,
        "n": size,
        "backend": mode,
        "steps": len(samples),
        "step_mean_s": mean,
        "step_p99_s": _percentile(samples, 0.99),
        "recompute_s": recompute,
        "speedup_vs_recompute": recompute / mean if mean else None,
        "coalesced_changes": getattr(program, "coalesced_changes", 0),
    }


def git_sha() -> str:
    """The current commit's SHA, or ``"unknown"`` outside a checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = completed.stdout.strip()
    return sha if completed.returncode == 0 and sha else "unknown"


def run_stamp() -> Dict[str, Any]:
    """Attribution fields stamped onto every bench payload and trend
    entry: wall-clock timestamps plus the git SHA."""
    now = time.time()
    return {
        "unix_time": now,
        "generated_at": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime(now)
        ),
        "git_sha": git_sha(),
    }


#: Traffic-cell backends: the coalesced mode is a property of how the
#: traffic arrives (bursts through ``step_batch``), not a third backend.
TRAFFIC_BACKENDS = ("interpreted", "compiled")


def run_traffic_cells(
    registry: Registry,
    workloads: Sequence[str],
    profiles: Sequence[str],
    size: int = 1_000,
    steps: int = 48,
    seed: int = 7,
    backends: Sequence[str] = TRAFFIC_BACKENDS,
    variants: Sequence[str] = (),
) -> List[Dict[str, Any]]:
    """One :func:`~repro.traffic.harness.measure_profile` row per
    (workload, backend, profile), plus one compiled-backend row per
    requested stack ``variant`` (``caching`` / ``durable``, see
    :data:`repro.observability.dashboard.VARIANT_KWARGS`)."""
    from repro.observability.dashboard import VARIANT_KWARGS
    from repro.traffic.harness import measure_profile

    rows = [
        measure_profile(
            registry,
            workload=workload,
            size=size,
            backend=backend,
            profile=profile,
            steps=steps,
            seed=seed,
        )
        for workload in workloads
        for backend in backends
        for profile in profiles
    ]
    rows.extend(
        measure_profile(
            registry,
            workload=workload,
            size=size,
            backend="compiled",
            profile=profile,
            steps=steps,
            seed=seed,
            **VARIANT_KWARGS[variant],
        )
        for workload in workloads
        for variant in variants
        for profile in profiles
    )
    return rows


def run_bench(
    quick: bool = False,
    workloads: Sequence[str] = tuple(WORKLOADS),
    registry: Registry | None = None,
    profiles: Sequence[str] = (),
    traffic_size: int = 1_000,
    traffic_steps: int = 48,
    sweep: bool = True,
    traffic_variants: Sequence[str] = (),
) -> Dict[str, Any]:
    """Run the sweep (and any traffic cells) and return the report dict
    (also what gets written as ``BENCH_fig7.json``)."""
    registry = registry if registry is not None else standard_registry()
    sizes = QUICK_SIZES if quick else FULL_SIZES
    rows = (
        [
            _measure_cell(registry, workload, size, mode)
            for workload in workloads
            for size in sizes
            for mode in MODES
        ]
        if sweep
        else []
    )
    report = {
        "figure": "fig7",
        **run_stamp(),
        "quick": quick,
        "sizes": list(sizes) if sweep else [],
        "modes": list(MODES),
        "burst": BURST,
        "rows": rows,
        "summary": summarize(rows) if rows else {},
    }
    if profiles:
        report["traffic"] = {
            "profiles": list(profiles),
            "size": traffic_size,
            "steps": traffic_steps,
            "backends": list(TRAFFIC_BACKENDS),
            "variants": list(traffic_variants),
            "rows": run_traffic_cells(
                registry,
                workloads,
                profiles,
                size=traffic_size,
                steps=traffic_steps,
                variants=traffic_variants,
            ),
        }
    return report


def summarize(rows: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """The three headline ratios the acceptance gate cares about, taken
    at the largest benchmarked size of each workload."""
    def cell(workload: str, mode: str) -> Dict[str, Any]:
        matching = [
            row
            for row in rows
            if row["workload"] == workload and row["backend"] == mode
        ]
        return max(matching, key=lambda row: row["n"])

    summary: Dict[str, Any] = {}
    for workload in sorted({row["workload"] for row in rows}):
        interpreted = cell(workload, "interpreted")
        compiled = cell(workload, "compiled")
        coalesced = cell(workload, "compiled+coalesce")
        summary[workload] = {
            "n": compiled["n"],
            "compiled_speedup_vs_interpreted": (
                interpreted["step_mean_s"] / compiled["step_mean_s"]
            ),
            "coalesce_speedup_vs_per_change": (
                compiled["step_mean_s"] / coalesced["step_mean_s"]
            ),
            "incremental_speedup_vs_recompute": (
                compiled["speedup_vs_recompute"]
            ),
        }
    return summary


# -- shard-scaling sweep -------------------------------------------------------
#
# ``foldBag f`` is a group homomorphism (Sec. 4.4), so the histogram can
# be partitioned by *word*: each shard folds (and incrementally
# maintains) only the slice of the histogram for the words it owns, and
# the full view is the ⊕-merge of the partials.  The sweep measures how
# per-reaction latency scales with the shard count.  The win is
# algorithmic, not concurrency: applying a derivative's delta ⊕-copies
# the owning shard's partial output (~|histogram|/N entries) instead of
# the whole histogram, so it holds even on a single core.

#: (elements, vocabulary) grid.  The vocabulary grows with the corpus so
#: the output map -- whose ⊕-copy dominates the per-step cost at these
#: sizes -- keeps growing too instead of saturating.
SHARD_SWEEP_SIZES: Tuple[Tuple[int, int], ...] = (
    (64_000, 32_768),
    (1_000_000, 131_072),
    (4_000_000, 262_144),
)
SHARD_SWEEP_QUICK_SIZES: Tuple[Tuple[int, int], ...] = ((64_000, 32_768),)

SHARD_COUNTS = (1, 2, 4, 8)
SHARD_QUICK_COUNTS = (1, 2)

_SHARD_PHASES = ("partition", "compute", "dispatch", "merge")


def _shard_change_stream(
    corpus: Any, count: int, seed: int
) -> List[Tuple[Any, ...]]:
    """A reproducible stream of single-word changes, uniform over the
    vocabulary so every shard's slice of the histogram sees traffic."""
    rng = random.Random(seed)
    rows: List[Tuple[Any, ...]] = []
    for _ in range(count):
        document = rng.randrange(corpus.document_count)
        word = rng.randrange(corpus.vocabulary_size)
        if rng.random() < 0.8:
            rows.append((add_word_change(document, word),))
        else:
            rows.append((remove_word_change(document, word),))
    return rows


def _phase_breakdown(metrics: Any) -> Dict[str, Any]:
    breakdown: Dict[str, Any] = {}
    for phase in _SHARD_PHASES:
        histogram = metrics.histogram(f"parallel.phase.{phase}_wall_time_s")
        if histogram.count:
            breakdown[phase] = {
                "count": histogram.count,
                "mean_ms": histogram.mean * 1e3,
                "p99_ms": (
                    histogram.quantile(0.99) * 1e3
                    if histogram.quantile(0.99) is not None
                    else None
                ),
            }
    return breakdown


def _shard_cell(
    registry: Registry,
    term: Any,
    corpus: Any,
    shards: int,
    stream: Sequence[Tuple[Any, ...]],
    warmup: int,
    expected: Any,
) -> Tuple[Dict[str, Any], Any]:
    """One (size, shard-count) cell: initialize, run the change stream,
    and read the merged view once; per-phase wall time comes from the
    ``parallel.phase.*`` histograms (initialize and steps reported
    separately)."""
    from repro.observability import get_observability, observing
    from repro.parallel.sharded import ShardedIncrementalProgram

    program = ShardedIncrementalProgram(term, registry, shards, seed=0)
    with observing(reset=True):
        began = time.perf_counter()
        program.initialize(corpus.documents)
        initialize_s = time.perf_counter() - began
        initialize_phases = _phase_breakdown(get_observability().metrics)
    with observing(reset=True):
        for row in stream[:warmup]:
            program.step(*row)
        samples: List[float] = []
        for row in stream[warmup:]:
            began = time.perf_counter()
            program.step(*row)
            samples.append(time.perf_counter() - began)
        began = time.perf_counter()
        output = program.output
        merge_s = time.perf_counter() - began
        step_phases = _phase_breakdown(get_observability().metrics)
        routed = program.routed_changes
    program.close()
    mean = statistics.fmean(samples)
    row = {
        "workload": "histogram",
        "n": corpus.total_words,
        "vocabulary": corpus.vocabulary_size,
        "shards": shards,
        "steps": len(samples),
        "routed_changes": routed,
        "initialize_s": initialize_s,
        "initialize_phases_ms": initialize_phases,
        "step_mean_s": mean,
        "step_p99_s": _percentile(samples, 0.99),
        "merge_s": merge_s,
        "output_size": len(output),
        "step_phases_ms": step_phases,
        "agrees_with_single_shard": (
            None if expected is None else output == expected
        ),
    }
    return row, output


def summarize_shards(rows: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Per-size speedup ladders (1-shard step mean / N-shard step mean),
    the number the acceptance gate reads."""
    summary: Dict[str, Any] = {}
    for n in sorted({row["n"] for row in rows}):
        cells = {
            row["shards"]: row for row in rows if row["n"] == n
        }
        base = cells.get(1)
        if base is None:
            continue
        summary[str(n)] = {
            "vocabulary": base["vocabulary"],
            "step_mean_s_1_shard": base["step_mean_s"],
            "speedup_vs_1": {
                str(shards): base["step_mean_s"] / cell["step_mean_s"]
                for shards, cell in sorted(cells.items())
            },
            "all_agree": all(
                cell["agrees_with_single_shard"] is not False
                for cell in cells.values()
            ),
        }
    return summary


def run_shard_sweep(
    registry: Registry | None = None,
    sizes: Sequence[Tuple[int, int]] = SHARD_SWEEP_SIZES,
    shard_counts: Sequence[int] = SHARD_COUNTS,
    steps: int = 32,
    warmup: int = 4,
    seed: int = 7,
) -> Dict[str, Any]:
    """The full sweep: for each (elements, vocabulary) size, one cell
    per shard count, all fed the identical change stream, each checked
    for exact agreement with the single-shard cell's merged output."""
    from repro.mapreduce.skeleton import histogram_term

    registry = registry if registry is not None else standard_registry()
    term = histogram_term(registry)
    rows: List[Dict[str, Any]] = []
    for n, vocabulary in sizes:
        corpus = make_corpus(n, vocabulary_size=vocabulary, seed=42)
        stream = _shard_change_stream(corpus, steps + warmup, seed=seed)
        expected: Any = None
        for shards in shard_counts:
            row, output = _shard_cell(
                registry, term, corpus, shards, stream, warmup, expected
            )
            if expected is None:
                expected = output
            rows.append(row)
    return {
        "sizes": [list(pair) for pair in sizes],
        "shard_counts": list(shard_counts),
        "steps": steps,
        "executor": "inprocess",
        "rows": rows,
        "summary": summarize_shards(rows),
    }


def main(argv: Sequence[str] | None = None, out=None) -> int:
    """CLI entry point (also reachable as ``repro bench``)."""
    import argparse
    import sys

    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Fig. 7 sweep across execution backends",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="endpoint sizes only (the CI smoke configuration)",
    )
    parser.add_argument(
        "--workload",
        action="append",
        choices=sorted(WORKLOADS),
        default=None,
        help="restrict to one workload (repeatable; default: all)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_fig7.json",
        metavar="PATH",
        help="where to write the JSON report (default BENCH_fig7.json)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="RATIO",
        help=(
            "fail (exit 1) unless compiled is at least RATIO times faster "
            "than interpreted per step on the histogram workload"
        ),
    )
    parser.add_argument(
        "--profile",
        action="append",
        default=None,
        metavar="NAME",
        help=(
            "add traffic cells for this profile (repeatable; see "
            "repro.traffic.profiles; implied ['uniform', 'zipf-burst'] "
            "under --sla)"
        ),
    )
    parser.add_argument(
        "--sla",
        action="store_true",
        help=(
            "gate the traffic cells against slo.json budgets and the "
            "trend history; exit 1 on any violation or regression"
        ),
    )
    parser.add_argument(
        "--slo",
        default=None,
        metavar="PATH",
        help="SLO budget file (default slo.json)",
    )
    parser.add_argument(
        "--trend",
        default=None,
        metavar="PATH",
        help=(
            "append-only trend history for regression checks "
            "(default BENCH_trend.jsonl; passing runs are appended)"
        ),
    )
    parser.add_argument(
        "--traffic-only",
        action="store_true",
        help="skip the Fig. 7 mode sweep and measure only traffic cells",
    )
    parser.add_argument(
        "--traffic-size",
        type=int,
        default=1_000,
        metavar="N",
        help="input size for traffic cells (default 1000)",
    )
    parser.add_argument(
        "--traffic-steps",
        type=int,
        default=48,
        metavar="N",
        help="timed steps per traffic cell (default 48)",
    )
    parser.add_argument(
        "--traffic-variant",
        action="append",
        choices=("caching", "durable"),
        default=None,
        metavar="NAME",
        help=(
            "also measure this stack variant on the compiled backend "
            "(repeatable): 'caching' = self-adjusting engine, "
            "'durable' = journaled steps with a journal phase"
        ),
    )
    parser.add_argument(
        "--shard-sweep",
        action="store_true",
        help=(
            "also run the shard-scaling sweep (histogram partitioned by "
            "word across 1/2/4/8 shards; --quick keeps 1/2 shards at the "
            "smallest size)"
        ),
    )
    parser.add_argument(
        "--shard-steps",
        type=int,
        default=32,
        metavar="N",
        help="timed steps per shard-sweep cell (default 32)",
    )
    parser.add_argument(
        "--min-shard-speedup",
        type=float,
        default=None,
        metavar="RATIO",
        help=(
            "with --shard-sweep, fail unless the largest swept shard "
            "count beats 1 shard per step by at least RATIO at the "
            "largest swept size"
        ),
    )
    args = parser.parse_args(argv)
    profiles = tuple(args.profile) if args.profile else ()
    if args.sla and not profiles:
        profiles = ("uniform", "zipf-burst")
    if args.traffic_only and not profiles:
        parser.error("--traffic-only requires at least one --profile")
    report = run_bench(
        quick=args.quick,
        workloads=tuple(args.workload) if args.workload else tuple(WORKLOADS),
        profiles=profiles,
        traffic_size=args.traffic_size,
        traffic_steps=args.traffic_steps,
        sweep=not args.traffic_only,
        traffic_variants=tuple(args.traffic_variant or ()),
    )
    if args.shard_sweep:
        report["shards"] = run_shard_sweep(
            sizes=(
                SHARD_SWEEP_QUICK_SIZES if args.quick else SHARD_SWEEP_SIZES
            ),
            shard_counts=SHARD_QUICK_COUNTS if args.quick else SHARD_COUNTS,
            steps=args.shard_steps,
        )

    slo_exit = 0
    if args.sla:
        slo_exit = _gate_sla(report, args, out)

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    if report["rows"]:
        print(f"{'workload':>12} {'n':>7} {'backend':>18} "
              f"{'step mean':>11} {'p99':>9} {'recompute':>10} {'speedup':>8}",
              file=out)
        for row in report["rows"]:
            print(
                f"{row['workload']:>12} {row['n']:>7} {row['backend']:>18} "
                f"{row['step_mean_s'] * 1e6:>9.1f}us "
                f"{row['step_p99_s'] * 1e6:>7.1f}us "
                f"{row['recompute_s'] * 1e3:>8.2f}ms "
                f"{row['speedup_vs_recompute']:>7.0f}x",
                file=out,
            )
    for workload, stats in report["summary"].items():
        print(
            f"{workload}: compiled {stats['compiled_speedup_vs_interpreted']:.2f}x "
            f"vs interpreted, coalesce {stats['coalesce_speedup_vs_per_change']:.2f}x "
            f"vs per-change, incremental {stats['incremental_speedup_vs_recompute']:.0f}x "
            f"vs recompute (n={stats['n']})",
            file=out,
        )
    for row in report.get("traffic", {}).get("rows", ()):
        latency = row["latency_ms"]
        throughput = row["changes_per_s"]
        print(
            f"{row['workload']:>12} {row['n']:>7} {row['backend']:>12} "
            f"{row['profile']:<12} "
            f"p50={latency['p50']:.3f}ms p99={latency['p99']:.3f}ms "
            f"p999={latency['p999']:.3f}ms "
            f"{throughput:,.0f} changes/s",
            file=out,
        )
    shard_report = report.get("shards")
    if shard_report:
        print(
            f"{'shard sweep':>12} {'n':>9} {'vocab':>8} {'shards':>6} "
            f"{'init':>8} {'step mean':>11} {'p99':>9} {'merge':>8} "
            f"{'agree':>5}",
            file=out,
        )
        for row in shard_report["rows"]:
            agrees = row["agrees_with_single_shard"]
            print(
                f"{'':>12} {row['n']:>9} {row['vocabulary']:>8} "
                f"{row['shards']:>6} {row['initialize_s']:>7.2f}s "
                f"{row['step_mean_s'] * 1e6:>9.1f}us "
                f"{row['step_p99_s'] * 1e6:>7.1f}us "
                f"{row['merge_s'] * 1e3:>6.1f}ms "
                f"{'ref' if agrees is None else ('yes' if agrees else 'NO'):>5}",
                file=out,
            )
        for n, stats in shard_report["summary"].items():
            ladder = " ".join(
                f"{shards}x{speedup:.2f}"
                for shards, speedup in stats["speedup_vs_1"].items()
            )
            print(
                f"shards@{n}: speedup vs 1 shard [{ladder}] "
                f"(vocab {stats['vocabulary']}, "
                f"agree={'yes' if stats['all_agree'] else 'NO'})",
                file=out,
            )
    print(f"report: {args.output}", file=out)

    if args.min_shard_speedup is not None:
        if not shard_report:
            print(
                "error: --min-shard-speedup requires --shard-sweep",
                file=out,
            )
            return 1
        largest = max(shard_report["summary"], key=int)
        stats = shard_report["summary"][largest]
        if not stats["all_agree"]:
            print(
                f"error: sharded outputs disagree at n={largest}", file=out
            )
            return 1
        top = max(stats["speedup_vs_1"], key=int)
        achieved = stats["speedup_vs_1"][top]
        if achieved < args.min_shard_speedup:
            print(
                f"error: {top}-shard speedup {achieved:.2f} at n={largest} "
                f"< required {args.min_shard_speedup}",
                file=out,
            )
            return 1

    if args.min_speedup is not None:
        achieved = report["summary"].get("histogram", {}).get(
            "compiled_speedup_vs_interpreted"
        )
        if achieved is None or achieved < args.min_speedup:
            print(
                f"error: compiled/interpreted speedup "
                f"{achieved if achieved is not None else 'n/a'} "
                f"< required {args.min_speedup}",
                file=out,
            )
            return 1
    return slo_exit


def _gate_sla(report: Dict[str, Any], args: Any, out: Any) -> int:
    """Evaluate the traffic cells against budgets + trend; mutate the
    report with the verdicts; append passing runs to the trend.  Returns
    the exit code contribution (1 on violation)."""
    from repro.observability.slo import (
        DEFAULT_SLO_PATH,
        DEFAULT_TREND_PATH,
        append_trend_entry,
        evaluate_slo,
        load_slo,
        load_trend,
    )

    slo_path = args.slo if args.slo is not None else DEFAULT_SLO_PATH
    trend_path = args.trend if args.trend is not None else DEFAULT_TREND_PATH
    policy = load_slo(slo_path)
    trend = load_trend(trend_path)
    traffic_rows = report.get("traffic", {}).get("rows", [])
    slo_report = evaluate_slo(policy, traffic_rows, trend)
    report["slo"] = {
        "policy_path": slo_path,
        "trend_path": trend_path,
        "trend_entries": len(trend),
        **slo_report,
    }
    for verdict in slo_report["verdicts"]:
        measured = verdict["measured"]
        marker = {"ok": "ok ", "violated": "FAIL", "unbudgeted": "??? "}[
            verdict["status"]
        ]
        print(
            f"slo {marker} {verdict['cell']:<42} "
            f"p99={_fmt_ms(measured['p99_ms'])} "
            f"p999={_fmt_ms(measured['p999_ms'])} "
            f"{_fmt_tp(measured['changes_per_s'])}",
            file=out,
        )
        for reason in verdict["reasons"]:
            print(f"         {reason}", file=out)
    if slo_report["ok"]:
        entry_meta = {
            "unix_time": report["unix_time"],
            "generated_at": report["generated_at"],
            "git_sha": report["git_sha"],
            "quick": report["quick"],
        }
        append_trend_entry(trend_path, traffic_rows, entry_meta)
        print(
            f"slo: all {len(slo_report['verdicts'])} cells ok; "
            f"trend entry appended to {trend_path}",
            file=out,
        )
        return 0
    print(
        f"error: {slo_report['violations']} SLO violation(s); "
        f"trend NOT appended",
        file=out,
    )
    return 1


def _fmt_ms(value: Optional[float]) -> str:
    return f"{value:.3f}ms" if value is not None else "-"


def _fmt_tp(value: Optional[float]) -> str:
    return f"{value:,.0f} changes/s" if value is not None else "-"


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
