"""``repro bench`` -- the Fig. 7 sweep, traffic cells, and the SLO gate.

Runs the paper's two headline workloads (the Sec. 1 ``grand_total`` and
the Sec. 4.5 wordcount ``histogram``) over a size sweep, under each
execution mode:

* ``interpreted``        -- the environment-passing AST interpreter;
* ``compiled``           -- the staged closure compiler (the default
  engine backend);
* ``compiled+coalesce``  -- the compiled backend fed bursty change
  streams through :meth:`step_batch`, which composes each burst into a
  single change before invoking the derivative.

For every (workload, size, mode) cell it reports per-reaction latency
(mean and p99 over a warm change stream), from-scratch recomputation
time, and the incremental-vs-recompute speedup.

On top of the sweep, ``--profile NAME`` adds *traffic cells*: the named
adversarial traffic profiles (:mod:`repro.traffic`) run against both
backends, reporting p50/p99/p999 latency and changes/sec.  ``--sla``
turns the traffic cells into a gate -- the measured cells are checked
against the declarative budgets in ``slo.json`` *and* against the
committed trend history ``BENCH_trend.jsonl`` (regression = p99 beyond
a factor of the cell's trend median), the run is appended to the trend
when it passes, and any violation exits non-zero.

The JSON report (``BENCH_fig7.json`` by default) is the artifact the
docs and the CI ``bench-smoke``/``slo-gate`` jobs read; every payload
is stamped with the wall-clock timestamp and git SHA so trend entries
stay attributable.  See ``docs/performance.md`` for the schema.

Usage::

    python -m repro bench --quick --output BENCH_fig7.json
    python -m repro bench --quick --sla --profile uniform --profile zipf-burst
"""

from __future__ import annotations

import json
import statistics
import subprocess
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.data.bag import Bag
from repro.data.change_values import GroupChange
from repro.data.group import BAG_GROUP
from repro.incremental.engine import IncrementalProgram
from repro.mapreduce.skeleton import grand_total_term, histogram_term
from repro.mapreduce.workloads import add_word_change, make_corpus
from repro.plugins.registry import Registry, standard_registry

#: Size sweeps (number of elements / word occurrences).  ``--quick``
#: keeps the endpoints only, which is enough for the smoke gate's
#: backend-ratio check while staying in CI's time budget.
FULL_SIZES = (1_000, 4_000, 16_000, 64_000)
QUICK_SIZES = (1_000, 16_000)

MODES = ("interpreted", "compiled", "compiled+coalesce")

#: Changes per burst in the coalesced mode.  Each burst is one
#: ``step_batch`` call; the per-reaction latency it reports is the burst
#: wall time divided by the burst size, directly comparable to the
#: per-change modes.
BURST = 8


def _histogram_workload(
    registry: Registry, size: int
) -> Tuple[Any, Tuple[Any, ...], List[Tuple[Any, ...]]]:
    corpus = make_corpus(size, vocabulary_size=1_000, seed=42)
    stream = [
        (add_word_change(step % 10, 7 + step % 13),) for step in range(64)
    ]
    return histogram_term(registry), (corpus.documents,), stream


def _grand_total_workload(
    registry: Registry, size: int
) -> Tuple[Any, Tuple[Any, ...], List[Tuple[Any, ...]]]:
    xs = Bag.from_iterable(range(size))
    ys = Bag.from_iterable(range(size, 2 * size))
    stream = [
        (
            GroupChange(BAG_GROUP, Bag.of(step % 7)),
            GroupChange(BAG_GROUP, Bag.of(size + step % 5).negate()),
        )
        for step in range(64)
    ]
    return grand_total_term(registry), (xs, ys), stream


WORKLOADS: Dict[
    str, Callable[[Registry, int], Tuple[Any, Tuple[Any, ...], List[Tuple[Any, ...]]]]
] = {
    "histogram": _histogram_workload,
    "grand_total": _grand_total_workload,
}


def _percentile(samples: Sequence[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _measure_cell(
    registry: Registry, workload: str, size: int, mode: str
) -> Dict[str, Any]:
    term, inputs, stream = WORKLOADS[workload](registry, size)
    backend = "interpreted" if mode == "interpreted" else "compiled"
    program = IncrementalProgram(term, registry, backend=backend)
    program.initialize(*inputs)

    # Warm-up: a few reactions so allocator/caches settle before timing.
    for row in stream[:4]:
        program.step(*row)

    samples: List[float] = []
    if mode == "compiled+coalesce":
        for start in range(0, len(stream), BURST):
            burst = stream[start : start + BURST]
            began = time.perf_counter()
            program.step_batch(burst, coalesce=True)
            elapsed = time.perf_counter() - began
            samples.extend([elapsed / len(burst)] * len(burst))
    else:
        for row in stream:
            began = time.perf_counter()
            program.step(*row)
            samples.append(time.perf_counter() - began)

    recompute = min(
        (lambda t0: (program.recompute(), time.perf_counter() - t0)[1])(
            time.perf_counter()
        )
        for _ in range(3)
    )
    mean = statistics.fmean(samples)
    return {
        "workload": workload,
        "n": size,
        "backend": mode,
        "steps": len(samples),
        "step_mean_s": mean,
        "step_p99_s": _percentile(samples, 0.99),
        "recompute_s": recompute,
        "speedup_vs_recompute": recompute / mean if mean else None,
        "coalesced_changes": getattr(program, "coalesced_changes", 0),
    }


def git_sha() -> str:
    """The current commit's SHA, or ``"unknown"`` outside a checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = completed.stdout.strip()
    return sha if completed.returncode == 0 and sha else "unknown"


def run_stamp() -> Dict[str, Any]:
    """Attribution fields stamped onto every bench payload and trend
    entry: wall-clock timestamps plus the git SHA."""
    now = time.time()
    return {
        "unix_time": now,
        "generated_at": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime(now)
        ),
        "git_sha": git_sha(),
    }


#: Traffic-cell backends: the coalesced mode is a property of how the
#: traffic arrives (bursts through ``step_batch``), not a third backend.
TRAFFIC_BACKENDS = ("interpreted", "compiled")


def run_traffic_cells(
    registry: Registry,
    workloads: Sequence[str],
    profiles: Sequence[str],
    size: int = 1_000,
    steps: int = 48,
    seed: int = 7,
    backends: Sequence[str] = TRAFFIC_BACKENDS,
    variants: Sequence[str] = (),
) -> List[Dict[str, Any]]:
    """One :func:`~repro.traffic.harness.measure_profile` row per
    (workload, backend, profile), plus one compiled-backend row per
    requested stack ``variant`` (``caching`` / ``durable``, see
    :data:`repro.observability.dashboard.VARIANT_KWARGS`)."""
    from repro.observability.dashboard import VARIANT_KWARGS
    from repro.traffic.harness import measure_profile

    rows = [
        measure_profile(
            registry,
            workload=workload,
            size=size,
            backend=backend,
            profile=profile,
            steps=steps,
            seed=seed,
        )
        for workload in workloads
        for backend in backends
        for profile in profiles
    ]
    rows.extend(
        measure_profile(
            registry,
            workload=workload,
            size=size,
            backend="compiled",
            profile=profile,
            steps=steps,
            seed=seed,
            **VARIANT_KWARGS[variant],
        )
        for workload in workloads
        for variant in variants
        for profile in profiles
    )
    return rows


def run_bench(
    quick: bool = False,
    workloads: Sequence[str] = tuple(WORKLOADS),
    registry: Registry | None = None,
    profiles: Sequence[str] = (),
    traffic_size: int = 1_000,
    traffic_steps: int = 48,
    sweep: bool = True,
    traffic_variants: Sequence[str] = (),
) -> Dict[str, Any]:
    """Run the sweep (and any traffic cells) and return the report dict
    (also what gets written as ``BENCH_fig7.json``)."""
    registry = registry if registry is not None else standard_registry()
    sizes = QUICK_SIZES if quick else FULL_SIZES
    rows = (
        [
            _measure_cell(registry, workload, size, mode)
            for workload in workloads
            for size in sizes
            for mode in MODES
        ]
        if sweep
        else []
    )
    report = {
        "figure": "fig7",
        **run_stamp(),
        "quick": quick,
        "sizes": list(sizes) if sweep else [],
        "modes": list(MODES),
        "burst": BURST,
        "rows": rows,
        "summary": summarize(rows) if rows else {},
    }
    if profiles:
        report["traffic"] = {
            "profiles": list(profiles),
            "size": traffic_size,
            "steps": traffic_steps,
            "backends": list(TRAFFIC_BACKENDS),
            "variants": list(traffic_variants),
            "rows": run_traffic_cells(
                registry,
                workloads,
                profiles,
                size=traffic_size,
                steps=traffic_steps,
                variants=traffic_variants,
            ),
        }
    return report


def summarize(rows: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """The three headline ratios the acceptance gate cares about, taken
    at the largest benchmarked size of each workload."""
    def cell(workload: str, mode: str) -> Dict[str, Any]:
        matching = [
            row
            for row in rows
            if row["workload"] == workload and row["backend"] == mode
        ]
        return max(matching, key=lambda row: row["n"])

    summary: Dict[str, Any] = {}
    for workload in sorted({row["workload"] for row in rows}):
        interpreted = cell(workload, "interpreted")
        compiled = cell(workload, "compiled")
        coalesced = cell(workload, "compiled+coalesce")
        summary[workload] = {
            "n": compiled["n"],
            "compiled_speedup_vs_interpreted": (
                interpreted["step_mean_s"] / compiled["step_mean_s"]
            ),
            "coalesce_speedup_vs_per_change": (
                compiled["step_mean_s"] / coalesced["step_mean_s"]
            ),
            "incremental_speedup_vs_recompute": (
                compiled["speedup_vs_recompute"]
            ),
        }
    return summary


def main(argv: Sequence[str] | None = None, out=None) -> int:
    """CLI entry point (also reachable as ``repro bench``)."""
    import argparse
    import sys

    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Fig. 7 sweep across execution backends",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="endpoint sizes only (the CI smoke configuration)",
    )
    parser.add_argument(
        "--workload",
        action="append",
        choices=sorted(WORKLOADS),
        default=None,
        help="restrict to one workload (repeatable; default: all)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_fig7.json",
        metavar="PATH",
        help="where to write the JSON report (default BENCH_fig7.json)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="RATIO",
        help=(
            "fail (exit 1) unless compiled is at least RATIO times faster "
            "than interpreted per step on the histogram workload"
        ),
    )
    parser.add_argument(
        "--profile",
        action="append",
        default=None,
        metavar="NAME",
        help=(
            "add traffic cells for this profile (repeatable; see "
            "repro.traffic.profiles; implied ['uniform', 'zipf-burst'] "
            "under --sla)"
        ),
    )
    parser.add_argument(
        "--sla",
        action="store_true",
        help=(
            "gate the traffic cells against slo.json budgets and the "
            "trend history; exit 1 on any violation or regression"
        ),
    )
    parser.add_argument(
        "--slo",
        default=None,
        metavar="PATH",
        help="SLO budget file (default slo.json)",
    )
    parser.add_argument(
        "--trend",
        default=None,
        metavar="PATH",
        help=(
            "append-only trend history for regression checks "
            "(default BENCH_trend.jsonl; passing runs are appended)"
        ),
    )
    parser.add_argument(
        "--traffic-only",
        action="store_true",
        help="skip the Fig. 7 mode sweep and measure only traffic cells",
    )
    parser.add_argument(
        "--traffic-size",
        type=int,
        default=1_000,
        metavar="N",
        help="input size for traffic cells (default 1000)",
    )
    parser.add_argument(
        "--traffic-steps",
        type=int,
        default=48,
        metavar="N",
        help="timed steps per traffic cell (default 48)",
    )
    parser.add_argument(
        "--traffic-variant",
        action="append",
        choices=("caching", "durable"),
        default=None,
        metavar="NAME",
        help=(
            "also measure this stack variant on the compiled backend "
            "(repeatable): 'caching' = self-adjusting engine, "
            "'durable' = journaled steps with a journal phase"
        ),
    )
    args = parser.parse_args(argv)
    profiles = tuple(args.profile) if args.profile else ()
    if args.sla and not profiles:
        profiles = ("uniform", "zipf-burst")
    if args.traffic_only and not profiles:
        parser.error("--traffic-only requires at least one --profile")
    report = run_bench(
        quick=args.quick,
        workloads=tuple(args.workload) if args.workload else tuple(WORKLOADS),
        profiles=profiles,
        traffic_size=args.traffic_size,
        traffic_steps=args.traffic_steps,
        sweep=not args.traffic_only,
        traffic_variants=tuple(args.traffic_variant or ()),
    )

    slo_exit = 0
    if args.sla:
        slo_exit = _gate_sla(report, args, out)

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    if report["rows"]:
        print(f"{'workload':>12} {'n':>7} {'backend':>18} "
              f"{'step mean':>11} {'p99':>9} {'recompute':>10} {'speedup':>8}",
              file=out)
        for row in report["rows"]:
            print(
                f"{row['workload']:>12} {row['n']:>7} {row['backend']:>18} "
                f"{row['step_mean_s'] * 1e6:>9.1f}us "
                f"{row['step_p99_s'] * 1e6:>7.1f}us "
                f"{row['recompute_s'] * 1e3:>8.2f}ms "
                f"{row['speedup_vs_recompute']:>7.0f}x",
                file=out,
            )
    for workload, stats in report["summary"].items():
        print(
            f"{workload}: compiled {stats['compiled_speedup_vs_interpreted']:.2f}x "
            f"vs interpreted, coalesce {stats['coalesce_speedup_vs_per_change']:.2f}x "
            f"vs per-change, incremental {stats['incremental_speedup_vs_recompute']:.0f}x "
            f"vs recompute (n={stats['n']})",
            file=out,
        )
    for row in report.get("traffic", {}).get("rows", ()):
        latency = row["latency_ms"]
        throughput = row["changes_per_s"]
        print(
            f"{row['workload']:>12} {row['n']:>7} {row['backend']:>12} "
            f"{row['profile']:<12} "
            f"p50={latency['p50']:.3f}ms p99={latency['p99']:.3f}ms "
            f"p999={latency['p999']:.3f}ms "
            f"{throughput:,.0f} changes/s",
            file=out,
        )
    print(f"report: {args.output}", file=out)

    if args.min_speedup is not None:
        achieved = report["summary"].get("histogram", {}).get(
            "compiled_speedup_vs_interpreted"
        )
        if achieved is None or achieved < args.min_speedup:
            print(
                f"error: compiled/interpreted speedup "
                f"{achieved if achieved is not None else 'n/a'} "
                f"< required {args.min_speedup}",
                file=out,
            )
            return 1
    return slo_exit


def _gate_sla(report: Dict[str, Any], args: Any, out: Any) -> int:
    """Evaluate the traffic cells against budgets + trend; mutate the
    report with the verdicts; append passing runs to the trend.  Returns
    the exit code contribution (1 on violation)."""
    from repro.observability.slo import (
        DEFAULT_SLO_PATH,
        DEFAULT_TREND_PATH,
        append_trend_entry,
        evaluate_slo,
        load_slo,
        load_trend,
    )

    slo_path = args.slo if args.slo is not None else DEFAULT_SLO_PATH
    trend_path = args.trend if args.trend is not None else DEFAULT_TREND_PATH
    policy = load_slo(slo_path)
    trend = load_trend(trend_path)
    traffic_rows = report.get("traffic", {}).get("rows", [])
    slo_report = evaluate_slo(policy, traffic_rows, trend)
    report["slo"] = {
        "policy_path": slo_path,
        "trend_path": trend_path,
        "trend_entries": len(trend),
        **slo_report,
    }
    for verdict in slo_report["verdicts"]:
        measured = verdict["measured"]
        marker = {"ok": "ok ", "violated": "FAIL", "unbudgeted": "??? "}[
            verdict["status"]
        ]
        print(
            f"slo {marker} {verdict['cell']:<42} "
            f"p99={_fmt_ms(measured['p99_ms'])} "
            f"p999={_fmt_ms(measured['p999_ms'])} "
            f"{_fmt_tp(measured['changes_per_s'])}",
            file=out,
        )
        for reason in verdict["reasons"]:
            print(f"         {reason}", file=out)
    if slo_report["ok"]:
        entry_meta = {
            "unix_time": report["unix_time"],
            "generated_at": report["generated_at"],
            "git_sha": report["git_sha"],
            "quick": report["quick"],
        }
        append_trend_entry(trend_path, traffic_rows, entry_meta)
        print(
            f"slo: all {len(slo_report['verdicts'])} cells ok; "
            f"trend entry appended to {trend_path}",
            file=out,
        )
        return 0
    print(
        f"error: {slo_report['violations']} SLO violation(s); "
        f"trend NOT appended",
        file=out,
    )
    return 1


def _fmt_ms(value: Optional[float]) -> str:
    return f"{value:.3f}ms" if value is not None else "-"


def _fmt_tp(value: Optional[float]) -> str:
    return f"{value:,.0f} changes/s" if value is not None else "-"


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
