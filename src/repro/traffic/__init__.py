"""Traffic models: adversarial, seeded change streams for the harness.

The driver's uniform workload answers "is the derivative fast?"; this
package answers "does it *stay* fast when traffic misbehaves?".  It
composes seeded generators -- Zipf-skewed key popularity, burst/lull
duty cycles, hot-key churn, read/write mixes, fault storms -- into
named :class:`~repro.traffic.models.TrafficProfile`\\ s consumable by
``repro trace --profile``, the ``repro bench`` SLO gate, and
``repro dashboard``:

* :mod:`repro.traffic.models`   -- the composable axes and the event
  stream compiler (deterministic in the seed);
* :mod:`repro.traffic.profiles` -- the named profile registry;
* :mod:`repro.traffic.harness`  -- the measurement core: one profile ×
  workload × backend run, reporting latency quantiles, changes/sec,
  and per-phase breakdowns.
"""

from repro.traffic.harness import TRAFFIC_WORKLOADS, measure_profile
from repro.traffic.models import (
    BurstLull,
    FaultStorm,
    HotKeyChurn,
    Steady,
    TrafficError,
    TrafficEvent,
    TrafficProfile,
    UniformKeys,
    ZipfKeys,
    change_for_type,
    stream_signature,
)
from repro.traffic.profiles import PROFILES, get_profile, profile_names

__all__ = [
    "BurstLull",
    "FaultStorm",
    "HotKeyChurn",
    "PROFILES",
    "Steady",
    "TRAFFIC_WORKLOADS",
    "TrafficError",
    "TrafficEvent",
    "TrafficProfile",
    "UniformKeys",
    "ZipfKeys",
    "change_for_type",
    "get_profile",
    "measure_profile",
    "profile_names",
    "stream_signature",
]
