"""The named traffic profiles the CLI, bench, and dashboard consume.

Each profile is one answer to "what does production look like today?":

* ``uniform``     -- the stock driver shape: one uniformly-keyed change
  per step (the Fig. 7 workload's change stream);
* ``zipf``        -- steady arrivals, Zipf-skewed key popularity (a few
  hot documents take most writes);
* ``zipf-burst``  -- Zipf keys under a burst/lull duty cycle; bursts
  arrive as batches so change-batch fusion gets exercised;
* ``hot-churn``   -- a rotating hot set: 90% of writes hit 3 keys, and
  the 3 keys change every 16 steps;
* ``read-heavy``  -- 3 reads per write over Zipf keys (a serving-layer
  mix: output queries dominate);
* ``write-storm`` -- heavy steady write load (4 rows/step) with more
  removals, uniform keys;
* ``fault-storm`` -- uniform traffic that turns hostile for a window:
  half the rows corrupted during steps 8-15 (run it under
  ``--resilient`` -- rejecting the garbage *is* the behaviour under
  test).

Profiles are looked up by name (:func:`get_profile`) everywhere a CLI
flag or a bench cell names one, so adding an entry here lights it up in
``repro trace --profile``, ``repro bench``, and ``repro dashboard`` at
once.
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro.traffic.models import (
    BurstLull,
    FaultStorm,
    HotKeyChurn,
    Steady,
    TrafficError,
    TrafficProfile,
    UniformKeys,
    ZipfKeys,
)

PROFILES: Dict[str, TrafficProfile] = {
    profile.name: profile
    for profile in (
        TrafficProfile(
            name="uniform",
            keys=UniformKeys(),
            arrival=Steady(1),
            description="one uniformly-keyed change per step (driver default)",
        ),
        TrafficProfile(
            name="zipf",
            keys=ZipfKeys(skew=1.2),
            arrival=Steady(1),
            description="steady arrivals, Zipf-skewed key popularity",
        ),
        TrafficProfile(
            name="zipf-burst",
            keys=ZipfKeys(skew=1.2),
            arrival=BurstLull(burst_steps=4, lull_steps=8, burst_rows=8),
            description="Zipf keys under a burst/lull duty cycle",
        ),
        TrafficProfile(
            name="hot-churn",
            keys=HotKeyChurn(hot_count=3, hot_fraction=0.9, churn_every=16),
            arrival=Steady(2),
            description="90% of writes hit a 3-key hot set that rotates",
        ),
        TrafficProfile(
            name="read-heavy",
            keys=ZipfKeys(skew=1.2),
            arrival=Steady(1),
            write_ratio=0.25,
            description="3 reads per write over Zipf keys",
        ),
        TrafficProfile(
            name="write-storm",
            keys=UniformKeys(),
            arrival=Steady(4),
            removal_ratio=0.4,
            description="heavy steady write load with frequent removals",
        ),
        TrafficProfile(
            name="fault-storm",
            keys=UniformKeys(),
            arrival=Steady(1),
            storm=FaultStorm(start=8, length=8, corrupt_ratio=0.5),
            description="half the rows corrupted during steps 8-15",
        ),
    )
}


def profile_names() -> List[str]:
    return sorted(PROFILES)


def get_profile(profile: Union[str, TrafficProfile]) -> TrafficProfile:
    """Resolve a profile by name (pass-through for profile objects)."""
    if isinstance(profile, TrafficProfile):
        return profile
    resolved = PROFILES.get(profile)
    if resolved is None:
        raise TrafficError(
            f"unknown traffic profile {profile!r} "
            f"(available: {', '.join(profile_names())})"
        )
    return resolved


__all__ = ["PROFILES", "get_profile", "profile_names"]
