"""Composable, seeded traffic models for adversarial change streams.

The driver's stock workload is *uniform*: one small change per step,
keys drawn evenly.  Production traffic is none of those things -- key
popularity is Zipf-skewed, arrivals come in bursts, the hot set churns,
reads interleave with writes, and sometimes a dependency melts down and
the stream turns hostile.  This module models each of those axes as a
small, frozen, seeded component:

* **key models** -- which key (document id, map key, bag element) a
  change touches: :class:`UniformKeys`, :class:`ZipfKeys`,
  :class:`HotKeyChurn`;
* **arrival models** -- how many change rows land per step:
  :class:`Steady`, :class:`BurstLull` (bursts exercise
  ``step_batch``'s change-batch fusion, which is exactly what the
  change-composition algebra of Alvarez-Picallo's change actions
  stresses);
* **fault storms** -- a step window during which changes are corrupted
  and/or primitives sabotaged, reusing
  :mod:`repro.incremental.faults`;
* :class:`TrafficProfile` -- the composition, compiled by
  :meth:`TrafficProfile.events` into a reproducible
  :class:`TrafficEvent` stream for a program's inferred input types.

Determinism is a hard contract: ``events(...)`` consumes a single
``random.Random(seed)`` in a fixed order, so the same (profile,
input types, steps, seed) always yields a byte-identical stream --
:func:`stream_signature` is the canonical fingerprint tests pin.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.data.bag import Bag
from repro.data.change_values import GroupChange, Replace
from repro.data.group import BAG_GROUP, INT_ADD_GROUP, map_group
from repro.data.pmap import PMap
from repro.errors import ReproError
from repro.incremental.faults import corrupt_change
from repro.lang.types import TBase, Type


class TrafficError(ReproError, ValueError):
    """A traffic model cannot serve the requested type or parameters."""


# -- key models ----------------------------------------------------------------

@dataclass(frozen=True)
class UniformKeys:
    """Every key in the space equally likely."""

    def key(self, rng: random.Random, space: int, step: int) -> int:
        return rng.randrange(space)


@dataclass(frozen=True)
class ZipfKeys:
    """Zipf-ish key popularity: rank drawn as ``space ** u`` so low
    ranks dominate (the same shape `mapreduce.workloads` uses for its
    vocabulary).  ``skew`` > 1 sharpens the head, < 1 flattens it."""

    skew: float = 1.0

    def key(self, rng: random.Random, space: int, step: int) -> int:
        u = rng.random() ** self.skew
        rank = int(space ** u) - 1
        return min(max(rank, 0), space - 1)


@dataclass(frozen=True)
class HotKeyChurn:
    """A small hot set absorbs most traffic, and the set *rotates*.

    Every ``churn_every`` steps the hot set is re-drawn (seeded by the
    epoch number, so the rotation schedule is deterministic and
    stateless).  Rotation is the adversarial part: derivatives that
    cache per-key state see their working set invalidated on every
    epoch boundary.
    """

    hot_count: int = 3
    hot_fraction: float = 0.9
    churn_every: int = 16

    def _hot_set(self, space: int, step: int) -> List[int]:
        epoch = step // self.churn_every
        # Derived integer seed: epoch-stable, space- and width-sensitive.
        picker = random.Random(space * 1_000_003 + epoch * 101 + self.hot_count)
        return [picker.randrange(space) for _ in range(self.hot_count)]

    def key(self, rng: random.Random, space: int, step: int) -> int:
        if rng.random() < self.hot_fraction:
            return rng.choice(self._hot_set(space, step))
        return rng.randrange(space)


# -- arrival models ------------------------------------------------------------

@dataclass(frozen=True)
class Steady:
    """The same number of change rows every step."""

    rows_per_step: int = 1

    def rows_at(self, step: int) -> int:
        return self.rows_per_step


@dataclass(frozen=True)
class BurstLull:
    """A duty cycle: ``burst_steps`` steps of ``burst_rows`` rows each,
    then ``lull_steps`` steps of ``lull_rows``.  Bursts are delivered as
    one batch per step, so engines get to coalesce them."""

    burst_steps: int = 4
    lull_steps: int = 8
    burst_rows: int = 8
    lull_rows: int = 1

    def rows_at(self, step: int) -> int:
        phase = step % (self.burst_steps + self.lull_steps)
        return self.burst_rows if phase < self.burst_steps else self.lull_rows


# -- fault storms --------------------------------------------------------------

@dataclass(frozen=True)
class FaultStorm:
    """A hostile window: steps in ``[start, start + length)`` have each
    change row corrupted with probability ``corrupt_ratio``, and the
    listed primitive fault specs (the ``raise:NAME``/``wrong:NAME``
    grammar of :func:`repro.incremental.faults.parse_fault_spec`) are
    active for the window's duration."""

    start: int = 0
    length: int = 4
    corrupt_ratio: float = 0.5
    primitive_faults: Tuple[str, ...] = ()

    def active_at(self, step: int) -> bool:
        return self.start <= step < self.start + self.length


# -- typed change synthesis ----------------------------------------------------

def _is_base(ty: Type, name: str, arity: int) -> bool:
    return isinstance(ty, TBase) and ty.name == name and len(ty.args) == arity


def change_for_type(
    ty: Type,
    rng: random.Random,
    keys: Any,
    step: int,
    key_space: int,
    value_space: int,
    removal_ratio: float,
) -> Any:
    """One O(1)-payload change for type ``ty`` with the key (and, for
    bags, the element value) drawn from the key model -- the
    popularity skew lands wherever the type has a notion of key."""
    if _is_base(ty, "Int", 0):
        return GroupChange(INT_ADD_GROUP, rng.randint(-5, 5))
    if _is_base(ty, "Bool", 0):
        return Replace(rng.random() < 0.5)
    if _is_base(ty, "Bag", 1) and _is_base(ty.args[0], "Int", 0):
        element = Bag.singleton(keys.key(rng, value_space, step))
        if rng.random() < removal_ratio:
            element = element.negate()
        return GroupChange(BAG_GROUP, element)
    if _is_base(ty, "Pair", 2):
        return (
            change_for_type(
                ty.args[0], rng, keys, step, key_space, value_space,
                removal_ratio,
            ),
            change_for_type(
                ty.args[1], rng, keys, step, key_space, value_space,
                removal_ratio,
            ),
        )
    if _is_base(ty, "Map", 2) and _is_base(ty.args[0], "Int", 0):
        value_type = ty.args[1]
        key = keys.key(rng, key_space, step)
        if _is_base(value_type, "Bag", 1):
            word = Bag.singleton(rng.randrange(value_space))
            if rng.random() < removal_ratio:
                word = word.negate()
            return GroupChange(map_group(BAG_GROUP), PMap.singleton(key, word))
        if _is_base(value_type, "Int", 0):
            return GroupChange(
                map_group(INT_ADD_GROUP),
                PMap.singleton(key, rng.randint(-5, 5)),
            )
    raise TrafficError(
        f"cannot generate traffic for type {ty!r}; "
        "supported: Int, Bool, Bag Int, pairs, Map Int (Bag Int), Map Int Int"
    )


# -- the composed profile ------------------------------------------------------

@dataclass(frozen=True)
class TrafficEvent:
    """One step's worth of traffic.

    ``rows`` is the step's burst -- each row is one change per program
    input, deliverable as ``step_batch(rows)`` (or row-by-row ``step``
    calls).  ``reads`` is how many read operations (output queries)
    accompany the burst.  ``corrupt`` marks storm-mangled rows, and
    ``storm`` flags whether a fault storm is active this step.
    """

    step: int
    rows: Tuple[Tuple[Any, ...], ...]
    reads: int = 0
    corrupt: bool = False
    storm: bool = False

    @property
    def writes(self) -> int:
        return len(self.rows)


@dataclass(frozen=True)
class TrafficProfile:
    """A named composition of traffic axes, compiled to an event stream."""

    name: str
    keys: Any = field(default_factory=UniformKeys)
    arrival: Any = field(default_factory=Steady)
    #: Fraction of operations that are writes; the rest become ``reads``
    #: on the same event (1.0 = write-only, the stock driver shape).
    write_ratio: float = 1.0
    #: Probability a bag/map-of-bags change is a removal.
    removal_ratio: float = 0.2
    key_space: int = 100
    value_space: int = 1000
    storm: Optional[FaultStorm] = None
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.write_ratio <= 1.0:
            raise TrafficError(
                f"write_ratio must be in (0, 1], got {self.write_ratio}"
            )
        if not 0.0 <= self.removal_ratio <= 1.0:
            raise TrafficError(
                f"removal_ratio must be in [0, 1], got {self.removal_ratio}"
            )

    def events(
        self,
        input_types: Sequence[Type],
        steps: int,
        seed: int = 7,
    ) -> Iterator[TrafficEvent]:
        """The reproducible event stream for a program with these input
        types: same (profile, types, steps, seed) ⇒ identical events."""
        rng = random.Random(seed)
        for step in range(steps):
            row_count = self.arrival.rows_at(step)
            rows: List[Tuple[Any, ...]] = []
            for _ in range(row_count):
                rows.append(
                    tuple(
                        change_for_type(
                            ty,
                            rng,
                            self.keys,
                            step,
                            self.key_space,
                            self.value_space,
                            self.removal_ratio,
                        )
                        for ty in input_types
                    )
                )
            # Reads ride along in proportion to the write/read mix:
            # write_ratio 0.25 means 3 reads accompany every write.
            reads = 0
            if self.write_ratio < 1.0:
                per_write = (1.0 - self.write_ratio) / self.write_ratio
                exact = per_write * row_count
                reads = int(exact)
                if rng.random() < exact - reads:
                    reads += 1
            storm_active = self.storm is not None and self.storm.active_at(step)
            corrupt = False
            if storm_active and self.storm.corrupt_ratio > 0:
                mangled: List[Tuple[Any, ...]] = []
                for row in rows:
                    if rng.random() < self.storm.corrupt_ratio:
                        corrupt = True
                        mangled.append(
                            tuple(corrupt_change(change, rng) for change in row)
                        )
                    else:
                        mangled.append(row)
                rows = mangled
            yield TrafficEvent(
                step=step,
                rows=tuple(rows),
                reads=reads,
                corrupt=corrupt,
                storm=storm_active,
            )

    def storm_faults(self) -> Tuple[str, ...]:
        """The primitive fault specs a runner must arm during storm steps."""
        return self.storm.primitive_faults if self.storm else ()


def stream_signature(
    profile: TrafficProfile,
    input_types: Sequence[Type],
    steps: int,
    seed: int = 7,
) -> str:
    """A canonical fingerprint of the full event stream.

    Built from ``repr`` of every event component; byte-identical across
    runs and processes for the same inputs, so determinism tests can
    compare signatures instead of materialized change objects.
    """
    parts: List[str] = []
    for event in profile.events(input_types, steps, seed):
        parts.append(
            f"{event.step}|{event.reads}|{int(event.corrupt)}|"
            f"{int(event.storm)}|{event.rows!r}"
        )
    return "\n".join(parts)


__all__ = [
    "BurstLull",
    "FaultStorm",
    "HotKeyChurn",
    "Steady",
    "TrafficError",
    "TrafficEvent",
    "TrafficProfile",
    "UniformKeys",
    "ZipfKeys",
    "change_for_type",
    "stream_signature",
]
