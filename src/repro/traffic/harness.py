"""Run a traffic profile against a workload and measure the tail.

This is the measurement core shared by ``repro bench`` (the SLO gate's
traffic cells) and ``repro dashboard``: one
:func:`measure_profile` call = one (workload × backend × profile) cell,
reporting per-step latency quantiles (p50/p90/p99/p999), changes/sec
throughput, and the per-phase breakdown (derivative vs ⊕ vs journal
append+fsync) the capacity question decomposes into.

Latency is wall time per *event* -- a burst delivered through
``step_batch`` counts each absorbed change toward throughput but is one
latency sample, matching how a serving layer would experience it.  Under
a fault storm the engine runs behind
:class:`~repro.incremental.resilient.ResilientProgram`; rejected rows
still cost (and are timed as) a step -- hostile traffic is load too.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.data.bag import Bag
from repro.errors import ReproError
from repro.incremental.engine import IncrementalProgram
from repro.incremental.resilient import ResiliencePolicy, ResilientProgram
from repro.lang.types import uncurry_fun_type
from repro.mapreduce.skeleton import grand_total_term, histogram_term
from repro.mapreduce.workloads import make_corpus
from repro.observability import observing
from repro.observability.quantiles import QuantileSketch
from repro.plugins.registry import Registry
from repro.traffic.models import TrafficError, TrafficProfile
from repro.traffic.profiles import get_profile


def _histogram_inputs(registry: Registry, size: int) -> Tuple[Any, Tuple[Any, ...]]:
    corpus = make_corpus(size, vocabulary_size=1_000, seed=42)
    return histogram_term(registry), (corpus.documents,)


def _grand_total_inputs(registry: Registry, size: int) -> Tuple[Any, Tuple[Any, ...]]:
    xs = Bag.from_iterable(range(size))
    ys = Bag.from_iterable(range(size, 2 * size))
    return grand_total_term(registry), (xs, ys)


#: Workloads traffic cells know how to build: name -> (term, inputs).
TRAFFIC_WORKLOADS: Dict[
    str, Callable[[Registry, int], Tuple[Any, Tuple[Any, ...]]]
] = {
    "histogram": _histogram_inputs,
    "grand_total": _grand_total_inputs,
}


def _phase_summary(sketch: QuantileSketch, count: int, total: float) -> Dict[str, Any]:
    def ms(value: Optional[float]) -> Optional[float]:
        return value * 1e3 if value is not None else None

    return {
        "count": count,
        "mean_ms": ms(total / count) if count else None,
        "p50_ms": ms(sketch.quantile(0.5)),
        "p99_ms": ms(sketch.quantile(0.99)),
    }


def measure_profile(
    registry: Registry,
    workload: str = "histogram",
    size: int = 1_000,
    backend: str = "compiled",
    profile: Any = "uniform",
    steps: int = 48,
    seed: int = 7,
    warmup: int = 4,
) -> Dict[str, Any]:
    """One traffic cell: run ``profile`` traffic over ``workload`` on
    ``backend`` and return the latency/throughput measurement row."""
    if workload not in TRAFFIC_WORKLOADS:
        raise TrafficError(
            f"unknown traffic workload {workload!r} "
            f"(available: {', '.join(sorted(TRAFFIC_WORKLOADS))})"
        )
    resolved: TrafficProfile = get_profile(profile)
    term, inputs = TRAFFIC_WORKLOADS[workload](registry, size)
    with observing():
        engine = IncrementalProgram(term, registry, backend=backend)
        input_types = list(uncurry_fun_type(engine.program_type)[0])[
            : engine.arity
        ]
        hostile = resolved.storm is not None
        runner: Any = (
            ResilientProgram(engine, ResiliencePolicy(), input_types=input_types)
            if hostile
            else engine
        )
        events = list(resolved.events(input_types, steps + warmup, seed))
        runner.initialize(*inputs)

        latency = QuantileSketch()
        derivative_sketch = QuantileSketch()
        oplus_sketch = QuantileSketch()
        derivative_total = oplus_total = 0.0
        derivative_count = oplus_count = 0
        latencies_s: List[float] = []
        changes = reads = rejected = 0
        wall = 0.0

        for index, event in enumerate(events):
            timed = index >= warmup
            began = time.perf_counter()
            if hostile or len(event.rows) == 1:
                for row in event.rows:
                    try:
                        runner.step(*row)
                    except ReproError:
                        if not hostile:
                            raise
                        rejected += 1
            elif event.rows:
                engine.step_batch(event.rows, coalesce=True)
            for _ in range(event.reads):
                _ = runner.output
            elapsed = time.perf_counter() - began
            if not timed:
                continue
            span = engine.last_step_span
            if span is not None:
                for child in span.children:
                    if child.name == "derivative":
                        derivative_sketch.record(child.duration)
                        derivative_total += child.duration
                        derivative_count += 1
                    elif child.name == "oplus":
                        oplus_sketch.record(child.duration)
                        oplus_total += child.duration
                        oplus_count += 1
            latency.record(elapsed)
            latencies_s.append(elapsed)
            wall += elapsed
            changes += event.writes
            reads += event.reads

    def ms(value: Optional[float]) -> Optional[float]:
        return value * 1e3 if value is not None else None

    phases: Dict[str, Any] = {
        "derivative": _phase_summary(
            derivative_sketch, derivative_count, derivative_total
        ),
        "oplus": _phase_summary(oplus_sketch, oplus_count, oplus_total),
    }
    return {
        "workload": workload,
        "backend": backend,
        "profile": resolved.name,
        "n": size,
        "seed": seed,
        "steps": len(latencies_s),
        "changes": changes,
        "reads": reads,
        "rejected_changes": rejected,
        "coalesced_changes": engine.coalesced_changes,
        "wall_s": wall,
        "changes_per_s": changes / wall if wall > 0 else None,
        "latency_ms": {
            "mean": ms(wall / len(latencies_s)) if latencies_s else None,
            "max": ms(max(latencies_s)) if latencies_s else None,
            "p50": ms(latency.quantile(0.5)),
            "p90": ms(latency.quantile(0.9)),
            "p99": ms(latency.quantile(0.99)),
            "p999": ms(latency.quantile(0.999)),
        },
        "phases_ms": phases,
        #: The most recent per-event latencies (ms), oldest first --
        #: the dashboard's sparkline feed.
        "latency_history_ms": [value * 1e3 for value in latencies_s[-64:]],
    }


__all__ = ["TRAFFIC_WORKLOADS", "measure_profile"]
