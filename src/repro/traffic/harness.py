"""Run a traffic profile against a workload and measure the tail.

This is the measurement core shared by ``repro bench`` (the SLO gate's
traffic cells) and ``repro dashboard``: one
:func:`measure_profile` call = one (workload × backend × profile) cell,
reporting per-step latency quantiles (p50/p90/p99/p999), changes/sec
throughput, and the per-phase breakdown (derivative vs ⊕ vs journal
append+fsync) the capacity question decomposes into.

Cells are assembled on the middleware stack
(:func:`repro.runtime.stack.build_stack`), so one function covers every
variant the dashboard shows:

* ``engine="caching"`` measures
  :class:`~repro.incremental.caching.CachingIncrementalProgram` instead
  of the plain engine (cell backend ``compiled+caching``);
* ``durable="always"``/``"never"`` adds a
  :class:`~repro.runtime.durability.DurabilityLayer` journaling every
  step into a temporary directory, and the journal append+fsync
  histogram becomes the cell's ``journal`` phase (cell backend
  ``compiled+durable``);
* hostile profiles (any with a fault storm) run behind a
  :class:`~repro.runtime.resilience.ResilienceLayer`; rejected rows
  still cost (and are timed as) a step -- hostile traffic is load too.

Latency is wall time per *event* -- a burst delivered through
``step_batch`` counts each absorbed change toward throughput but is one
latency sample, matching how a serving layer would experience it.
"""

from __future__ import annotations

import contextlib
import tempfile
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.data.bag import Bag
from repro.errors import ReproError
from repro.lang.types import uncurry_fun_type
from repro.mapreduce.skeleton import (
    grand_total_term,
    histogram_term,
    word_count_term,
)
from repro.mapreduce.workloads import make_corpus
from repro.observability import get_observability, observing
from repro.observability.quantiles import QuantileSketch
from repro.plugins.registry import Registry
from repro.traffic.models import TrafficError, TrafficProfile
from repro.traffic.profiles import get_profile


def _histogram_inputs(registry: Registry, size: int) -> Tuple[Any, Tuple[Any, ...]]:
    corpus = make_corpus(size, vocabulary_size=1_000, seed=42)
    return histogram_term(registry), (corpus.documents,)


def _grand_total_inputs(registry: Registry, size: int) -> Tuple[Any, Tuple[Any, ...]]:
    xs = Bag.from_iterable(range(size))
    ys = Bag.from_iterable(range(size, 2 * size))
    return grand_total_term(registry), (xs, ys)


def _wordcount_inputs(registry: Registry, size: int) -> Tuple[Any, Tuple[Any, ...]]:
    """The Sec. 4.4 wordcount cell: same program shape as ``histogram``
    but over a wide vocabulary (~size/4 distinct words), the regime
    where the per-step ⊕ against the output map dominates -- the one
    the shard sweep partitions."""
    from repro.bench import wordcount_vocabulary

    corpus = make_corpus(
        size, vocabulary_size=wordcount_vocabulary(size), seed=11
    )
    return word_count_term(registry), (corpus.documents,)


#: Workloads traffic cells know how to build: name -> (term, inputs).
TRAFFIC_WORKLOADS: Dict[
    str, Callable[[Registry, int], Tuple[Any, Tuple[Any, ...]]]
] = {
    "histogram": _histogram_inputs,
    "grand_total": _grand_total_inputs,
    "wordcount": _wordcount_inputs,
}

#: Engine variants a cell can measure (the label lands in the cell's
#: backend string: ``compiled+caching``).
TRAFFIC_ENGINES = ("incremental", "caching")


def _phase_summary(sketch: QuantileSketch, count: int, total: float) -> Dict[str, Any]:
    def ms(value: Optional[float]) -> Optional[float]:
        return value * 1e3 if value is not None else None

    return {
        "count": count,
        "mean_ms": ms(total / count) if count else None,
        "p50_ms": ms(sketch.quantile(0.5)),
        "p99_ms": ms(sketch.quantile(0.99)),
    }


def _cell_backend(backend: str, engine: str, durable: Optional[str]) -> str:
    """The cell's backend label: variants are suffixes so SLO budget
    cells (``workload/backend/profile``) stay one flat namespace."""
    label = backend
    if engine == "caching":
        label += "+caching"
    if durable:
        label += "+durable"
    return label


def measure_profile(
    registry: Registry,
    workload: str = "histogram",
    size: int = 1_000,
    backend: str = "compiled",
    profile: Any = "uniform",
    steps: int = 48,
    seed: int = 7,
    warmup: int = 4,
    engine: str = "incremental",
    durable: Optional[str] = None,
) -> Dict[str, Any]:
    """One traffic cell: run ``profile`` traffic over ``workload`` on
    ``backend`` (optionally the caching engine, optionally journaled
    with fsync policy ``durable``) and return the measurement row."""
    from repro.runtime.stack import assemble_stack

    if workload not in TRAFFIC_WORKLOADS:
        raise TrafficError(
            f"unknown traffic workload {workload!r} "
            f"(available: {', '.join(sorted(TRAFFIC_WORKLOADS))})"
        )
    if engine not in TRAFFIC_ENGINES:
        raise TrafficError(
            f"unknown traffic engine {engine!r} "
            f"(available: {', '.join(TRAFFIC_ENGINES)})"
        )
    if durable is not None and durable not in ("always", "never"):
        raise TrafficError(
            f"durable must be 'always', 'never', or None, got {durable!r}"
        )
    resolved: TrafficProfile = get_profile(profile)
    term, inputs = TRAFFIC_WORKLOADS[workload](registry, size)
    hostile = resolved.storm is not None
    # Each cell measures its own metrics window: reset=True gives the
    # journal phase (read from the global histogram) a clean slate.
    with contextlib.ExitStack() as resources:
        resources.enter_context(observing(reset=True))
        spec: List[Any] = []
        if durable:
            from repro.runtime.durability import DurabilityPolicy

            state_dir = resources.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-traffic-")
            )
            spec.append(
                (
                    "durable",
                    {
                        "directory": state_dir,
                        "policy": DurabilityPolicy(journal_fsync=durable),
                    },
                )
            )
        if hostile:
            spec.append("resilient")
        runner = assemble_stack(
            term, registry, spec, engine=engine, backend=backend
        )
        resources.callback(getattr(runner, "close", lambda: None))
        base = runner
        while getattr(base, "inner", None) is not None:
            base = base.inner
        input_types = list(uncurry_fun_type(base.program_type)[0])[
            : base.arity
        ]
        events = list(resolved.events(input_types, steps + warmup, seed))
        runner.initialize(*inputs)

        latency = QuantileSketch()
        derivative_sketch = QuantileSketch()
        oplus_sketch = QuantileSketch()
        derivative_total = oplus_total = 0.0
        derivative_count = oplus_count = 0
        latencies_s: List[float] = []
        changes = reads = rejected = 0
        wall = 0.0

        for index, event in enumerate(events):
            timed = index >= warmup
            began = time.perf_counter()
            if hostile or len(event.rows) == 1:
                for row in event.rows:
                    try:
                        runner.step(*row)
                    except ReproError:
                        if not hostile:
                            raise
                        rejected += 1
            elif event.rows:
                runner.step_batch(event.rows, coalesce=True)
            for _ in range(event.reads):
                _ = runner.output
            elapsed = time.perf_counter() - began
            if not timed:
                continue
            span = base.last_step_span
            if span is not None:
                for child in span.children:
                    if child.name == "derivative":
                        derivative_sketch.record(child.duration)
                        derivative_total += child.duration
                        derivative_count += 1
                    elif child.name == "oplus":
                        oplus_sketch.record(child.duration)
                        oplus_total += child.duration
                        oplus_count += 1
            latency.record(elapsed)
            latencies_s.append(elapsed)
            wall += elapsed
            changes += event.writes
            reads += event.reads

        phases: Dict[str, Any] = {
            "derivative": _phase_summary(
                derivative_sketch, derivative_count, derivative_total
            ),
            "oplus": _phase_summary(oplus_sketch, oplus_count, oplus_total),
        }
        if durable:
            # The journal layer's own histogram (append+fsync wall time)
            # is the cell's third phase -- the fsync cost the dashboard's
            # drill-down decomposes durable-cell latency into.
            append_hist = get_observability().metrics.histogram(
                "persistence.journal.append_wall_time_s"
            )
            if append_hist.count:
                phases["journal"] = {
                    "count": append_hist.count,
                    "mean_ms": append_hist.mean * 1e3,
                    "p50_ms": _maybe_ms(append_hist.quantile(0.5)),
                    "p99_ms": _maybe_ms(append_hist.quantile(0.99)),
                }
        coalesced = getattr(base, "coalesced_changes", 0)

    def ms(value: Optional[float]) -> Optional[float]:
        return value * 1e3 if value is not None else None

    return {
        "workload": workload,
        "backend": _cell_backend(backend, engine, durable),
        "profile": resolved.name,
        "n": size,
        "seed": seed,
        "steps": len(latencies_s),
        "changes": changes,
        "reads": reads,
        "rejected_changes": rejected,
        "coalesced_changes": coalesced,
        "wall_s": wall,
        "changes_per_s": changes / wall if wall > 0 else None,
        "latency_ms": {
            "mean": ms(wall / len(latencies_s)) if latencies_s else None,
            "max": ms(max(latencies_s)) if latencies_s else None,
            "p50": ms(latency.quantile(0.5)),
            "p90": ms(latency.quantile(0.9)),
            "p99": ms(latency.quantile(0.99)),
            "p999": ms(latency.quantile(0.999)),
        },
        "phases_ms": phases,
        #: The most recent per-event latencies (ms), oldest first --
        #: the dashboard's sparkline feed.
        "latency_history_ms": [value * 1e3 for value in latencies_s[-64:]],
    }


def _maybe_ms(value: Optional[float]) -> Optional[float]:
    return value * 1e3 if value is not None else None


__all__ = [
    "TRAFFIC_ENGINES",
    "TRAFFIC_WORKLOADS",
    "measure_profile",
]
