"""ILC: Incrementalizing λ-Calculi by Static Differentiation.

A Python reproduction of Cai, Giarrusso, Rendel & Ostermann,
*A Theory of Changes for Higher-Order Languages* (PLDI 2014).

Quickstart::

    from repro import standard_registry, incrementalize
    from repro.data import Bag, GroupChange, BAG_GROUP
    from repro.mapreduce import grand_total_term

    registry = standard_registry()
    program = incrementalize(grand_total_term(registry), registry)
    program.initialize(Bag.of(1, 1), Bag.of(2, 3, 4))        # 11
    program.step(
        GroupChange(BAG_GROUP, Bag.of(1).negate()),          # remove a 1
        GroupChange(BAG_GROUP, Bag.of(5)),                   # insert a 5
    )                                                        # 15, in O(|change|)

See ``examples/`` for runnable walkthroughs, DESIGN.md for the system
inventory, and EXPERIMENTS.md for the reproduced evaluation.
"""

import sys as _sys

# Interpreting, inferring, printing and differentiating are all
# structural recursions over the AST, each costing a handful of Python
# frames per term level; the default limit of 1000 caps programs at a few
# hundred nodes of depth.  Raise it so realistically deep programs work
# (CPython's 8 MB C stack comfortably accommodates this).
if _sys.getrecursionlimit() < 10_000:
    _sys.setrecursionlimit(10_000)

from repro.derive import check_derive_correctness, derive, derive_program
from repro.incremental import IncrementalProgram, incrementalize
from repro.lang.builders import app, lam, let, lit, v
from repro.lang.infer import infer_type, type_of
from repro.lang.parser import parse, parse_type
from repro.lang.pretty import pretty, pretty_type
from repro.optimize import optimize
from repro.plugins import Registry, standard_registry
from repro.semantics.eval import apply_value, evaluate

__version__ = "1.0.0"

__all__ = [
    "IncrementalProgram",
    "Registry",
    "app",
    "apply_value",
    "check_derive_correctness",
    "derive",
    "derive_program",
    "evaluate",
    "incrementalize",
    "infer_type",
    "lam",
    "let",
    "lit",
    "optimize",
    "parse",
    "parse_type",
    "pretty",
    "pretty_type",
    "standard_registry",
    "type_of",
    "v",
]
