"""Staged closure-compiler backend for the incremental hot path."""

from repro.compile.compiler import (
    CompileError,
    CompiledClosure,
    StagedProgram,
    compile_term,
    compile_value,
)

__all__ = [
    "CompileError",
    "CompiledClosure",
    "StagedProgram",
    "compile_term",
    "compile_value",
]
