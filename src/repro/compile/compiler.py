"""Staged compilation of object-language terms to Python closures.

The tree-walking :class:`~repro.semantics.eval.Evaluator` re-dispatches
on the AST for every node, every time a term is evaluated -- fine for a
reference semantics, wasteful for the incremental hot path where the
*same* derivative term runs once per change step (the paper's Scala EDSL
sidesteps this because host-language compilation stages the object
program for free).  This module performs that staging explicitly, in two
phases:

1. **compile** (:func:`compile_term`): one pass over the term translates
   each node into a *builder*.  Variables are resolved to absolute slots
   in a tuple-shaped runtime environment (innermost binder wins, i.e.
   de-Bruijn-style shadowing), so the compiled code never touches names,
   dict-based :class:`~repro.semantics.env.Env` frames, or the AST.
2. **instantiate** (:meth:`StagedProgram.instantiate`): binds an
   :class:`~repro.semantics.thunk.EvalStats` sink and materializes the
   tree of plain ``env -> value`` Python closures.

Semantics are *identical* to the interpreter -- same call-by-need
thunking in the same places (so the §4.3 self-maintainability argument
survives compilation), same error behaviour, and bit-for-bit identical
``EvalStats`` accounting, which `tests/compile/test_agreement.py`
enforces differentially.  Two deliberate consequences:

* Applications force the function *before* creating the argument thunk,
  exactly like ``Evaluator.eval``, so thunk-creation counts line up even
  on error paths.
* ``Const`` nodes re-check their spec's cached runtime template on every
  evaluation (one attribute load + identity check on the fast path).
  This keeps :mod:`repro.incremental.faults` working unchanged: fault
  injection swaps ``ConstantSpec.impl`` and nulls ``_runtime_template``
  in place, and compiled code picks the sabotaged primitive up on its
  next call just as the interpreter does.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.lang.terms import App, Const, Lam, Let, Lit, Term, Var
from repro.semantics.thunk import EvalStats, Thunk, force
from repro.semantics.values import FunctionValue, Primitive

__all__ = [
    "CompileError",
    "CompiledClosure",
    "StagedProgram",
    "compile_term",
    "compile_value",
]

# A runtime environment is a plain tuple of values/thunks; slot i holds
# the value of the i-th enclosing binder (outermost first).
Code = Callable[[Tuple[Any, ...]], Any]
Builder = Callable[[Optional[EvalStats]], Code]


class CompileError(ReproError, ValueError):
    """A term cannot be staged (unknown node kind)."""


class CompiledClosure(FunctionValue):
    """The compiled analogue of :class:`~repro.semantics.values.Closure`:
    a staged body plus the captured environment tuple."""

    __slots__ = ("code", "env")

    def __init__(self, code: Code, env: Tuple[Any, ...]):
        self.code = code
        self.env = env

    def apply(self, argument: Any) -> Any:
        return self.code(self.env + (argument,))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<compiled closure/{len(self.env)}>"


def _eval_error(fn: Any) -> Exception:
    # Deferred import: semantics.eval imports values/thunk only, but
    # keep the compiler importable without pulling the evaluator at
    # module import time.
    from repro.semantics.eval import EvaluationError

    return EvaluationError(f"cannot apply non-function value: {fn!r}")


def _compile(term: Term, scope: Tuple[str, ...], strict: bool) -> Builder:
    if isinstance(term, Var):
        name = term.name
        for index in range(len(scope) - 1, -1, -1):
            if scope[index] == name:
                def build_var(stats: Optional[EvalStats], _i: int = index) -> Code:
                    def run(env: Tuple[Any, ...]) -> Any:
                        return env[_i]

                    return run

                return build_var

        # Unbound: defer the failure to run time, like Env.lookup does.
        def build_unbound(stats: Optional[EvalStats], _n: str = name) -> Code:
            def run(env: Tuple[Any, ...]) -> Any:
                raise NameError(f"unbound variable at runtime: {_n}")

            return run

        return build_unbound

    if isinstance(term, Lit):
        value = term.value

        def build_lit(stats: Optional[EvalStats]) -> Code:
            def run(env: Tuple[Any, ...]) -> Any:
                return value

            return run

        return build_lit

    if isinstance(term, Const):
        spec = term.spec
        if spec.arity == 0:
            # Ground constants are immutable values; bind them now.
            def build_ground(stats: Optional[EvalStats]) -> Code:
                value = spec.runtime_value(stats)

                def run(env: Tuple[Any, ...]) -> Any:
                    return value

                return run

            return build_ground

        def build_const(stats: Optional[EvalStats]) -> Code:
            # cell = [template the bound primitive was derived from,
            #         stats-bound primitive].  Re-validated per call so
            # in-place fault injection (which nulls _runtime_template)
            # reaches compiled code exactly like interpreted code.
            cell: list = [None, None]

            def run(env: Tuple[Any, ...]) -> Any:
                template = spec._runtime_template
                if template is None or template is not cell[0]:
                    cell[1] = spec.runtime_value(stats)
                    cell[0] = spec._runtime_template
                return cell[1]

            return run

        return build_const

    if isinstance(term, Lam):
        body_build = _compile(term.body, scope + (term.param,), strict)

        def build_lam(stats: Optional[EvalStats]) -> Code:
            body = body_build(stats)

            def run(env: Tuple[Any, ...]) -> Any:
                return CompiledClosure(body, env)

            return run

        return build_lam

    if isinstance(term, App):
        spine_head, spine_args = _unroll_spine(term)
        if isinstance(spine_head, Const) and spine_head.spec.arity > 0:
            return _compile_spine(spine_head.spec, spine_args, scope, strict)

        fn_build = _compile(term.fn, scope, strict)
        arg_build = _compile(term.arg, scope, strict)

        if strict:

            def build_app_strict(stats: Optional[EvalStats]) -> Code:
                fn_code = fn_build(stats)
                arg_code = arg_build(stats)

                def run(env: Tuple[Any, ...]) -> Any:
                    fn = fn_code(env)
                    while isinstance(fn, Thunk):
                        fn = fn.force()
                    argument = arg_code(env)
                    while isinstance(argument, Thunk):
                        argument = argument.force()
                    if isinstance(fn, FunctionValue):
                        return fn.apply(argument)
                    raise _eval_error(fn)

                return run

            return build_app_strict

        def build_app(stats: Optional[EvalStats]) -> Code:
            fn_code = fn_build(stats)
            arg_code = arg_build(stats)

            def run(env: Tuple[Any, ...]) -> Any:
                fn = fn_code(env)
                while isinstance(fn, Thunk):
                    fn = fn.force()
                # Thunk created after forcing fn -- the interpreter's
                # order, so stats agree even when fn is not a function.
                argument = Thunk(lambda: arg_code(env), stats)
                if isinstance(fn, FunctionValue):
                    return fn.apply(argument)
                raise _eval_error(fn)

            return run

        return build_app

    if isinstance(term, Let):
        bound_build = _compile(term.bound, scope, strict)
        body_build = _compile(term.body, scope + (term.name,), strict)

        if strict:

            def build_let_strict(stats: Optional[EvalStats]) -> Code:
                bound_code = bound_build(stats)
                body_code = body_build(stats)

                def run(env: Tuple[Any, ...]) -> Any:
                    bound = bound_code(env)
                    while isinstance(bound, Thunk):
                        bound = bound.force()
                    return body_code(env + (bound,))

                return run

            return build_let_strict

        def build_let(stats: Optional[EvalStats]) -> Code:
            bound_code = bound_build(stats)
            body_code = body_build(stats)

            def run(env: Tuple[Any, ...]) -> Any:
                return body_code(env + (Thunk(lambda: bound_code(env), stats),))

            return run

        return build_let

    raise CompileError(f"cannot compile unknown term node: {term!r}")


def _unroll_spine(term: Term) -> Tuple[Term, Tuple[Term, ...]]:
    """``((h a1) a2) ... am`` -> ``(h, (a1, ..., am))``."""
    args: list = []
    while isinstance(term, App):
        args.append(term.arg)
        term = term.fn
    args.reverse()
    return term, tuple(args)


def _compile_spine(
    spec: Any, arg_terms: Tuple[Term, ...], scope: Tuple[str, ...], strict: bool
) -> Builder:
    """Fuse a ``Const``-headed application spine.

    The interpreter threads each argument through a chain of partial
    ``Primitive`` values; a fused spine skips the intermediate curry
    objects and calls ``impl`` directly once all ``arity`` arguments are
    in hand.  Thunk creation, forcing order (non-lazy positions forced
    left-to-right *after* ``record_primitive``), and over/under-
    application behaviour replicate ``Primitive.apply`` exactly, so
    ``EvalStats`` stay bit-identical.  The primitive is re-resolved
    through the spec's ``_runtime_template`` identity check per call, so
    in-place fault injection still lands.
    """
    arity = spec.arity
    lazy_positions = spec.lazy_positions
    count = len(arg_terms)
    arg_builders = [_compile(arg, scope, strict) for arg in arg_terms]
    # Per head-position force plan for a full call: True => force.
    force_plan = tuple(
        index not in lazy_positions for index in range(min(arity, count))
    )

    def build(stats: Optional[EvalStats]) -> Code:
        arg_codes = [builder(stats) for builder in arg_builders]
        head_codes = arg_codes[:arity]
        extra_codes = arg_codes[arity:]
        cell: list = [None, None]

        def resolve() -> Any:
            template = spec._runtime_template
            if template is None or template is not cell[0]:
                cell[1] = spec.runtime_value(stats)
                cell[0] = spec._runtime_template
            return cell[1]

        if count < arity:
            # Partial application: one Primitive instead of a curry
            # chain (the intermediates are unobservable).
            if strict:

                def run_partial_strict(env: Tuple[Any, ...]) -> Any:
                    prim = resolve()
                    args = []
                    for code in arg_codes:
                        value = code(env)
                        while isinstance(value, Thunk):
                            value = value.force()
                        args.append(value)
                    return Primitive(
                        prim.name,
                        prim.arity,
                        prim.impl,
                        prim.lazy_positions,
                        tuple(args),
                        prim.stats,
                    )

                return run_partial_strict

            def run_partial(env: Tuple[Any, ...]) -> Any:
                prim = resolve()
                args = tuple(
                    Thunk(lambda _c=code: _c(env), stats) for code in arg_codes
                )
                return Primitive(
                    prim.name,
                    prim.arity,
                    prim.impl,
                    prim.lazy_positions,
                    args,
                    prim.stats,
                )

            return run_partial

        if strict:

            def run_full_strict(env: Tuple[Any, ...]) -> Any:
                prim = resolve()
                prepared = []
                for code in head_codes:
                    value = code(env)
                    while isinstance(value, Thunk):
                        value = value.force()
                    prepared.append(value)
                prim_stats = prim.stats
                if prim_stats is not None:
                    prim_stats.record_primitive(prim.name)
                result = prim.impl(*prepared)
                for code in extra_codes:
                    while isinstance(result, Thunk):
                        result = result.force()
                    value = code(env)
                    while isinstance(value, Thunk):
                        value = value.force()
                    if isinstance(result, FunctionValue):
                        result = result.apply(value)
                    else:
                        raise _eval_error(result)
                return result

            return run_full_strict

        # Lazy full application.  The interpreter wraps every argument
        # in a Thunk, then ``Primitive.apply`` immediately forces the
        # non-lazy ones -- those wrapper thunks are unobservable (the
        # impl sees a forced value, the wrapper is dropped), so the
        # compiled code elides the objects and performs the *same*
        # EvalStats increments (one creation + one forcing per elided
        # wrapper) directly.  Only ``lazy_positions`` get real thunks:
        # their forcing (or not) is the §4.3 self-maintainability
        # signal.  ``eager_plan`` pairs each head code with whether its
        # wrapper can be elided.
        eager_plan = tuple(zip(head_codes, force_plan))
        eager_count = sum(force_plan)

        def run_full(env: Tuple[Any, ...]) -> Any:
            prim = resolve()
            prim_stats = prim.stats
            if prim_stats is not None:
                prim_stats.thunks_created += eager_count
                prim_stats.record_primitive(prim.name)
                prim_stats.thunks_forced += eager_count
            prepared = []
            for code, eager in eager_plan:
                if eager:
                    value = code(env)
                    while isinstance(value, Thunk):
                        value = value.force()
                    prepared.append(value)
                else:
                    prepared.append(Thunk(lambda _c=code: _c(env), stats))
            result = prim.impl(*prepared)
            for code in extra_codes:
                while isinstance(result, Thunk):
                    result = result.force()
                argument = Thunk(lambda _c=code: _c(env), stats)
                if isinstance(result, FunctionValue):
                    result = result.apply(argument)
                else:
                    raise _eval_error(result)
            return result

        return run_full

    return build


class StagedProgram:
    """A term compiled once, instantiable many times.

    ``free_names`` declares the environment frame the caller will supply
    (outermost first); the compiled entry point takes one positional
    value per free name.  Closed terms take no frame.
    """

    __slots__ = ("term", "free_names", "strict", "_builder")

    def __init__(
        self,
        term: Term,
        free_names: Tuple[str, ...],
        strict: bool,
        builder: Builder,
    ):
        self.term = term
        self.free_names = free_names
        self.strict = strict
        self._builder = builder

    def instantiate(
        self, stats: Optional[EvalStats] = None
    ) -> Callable[..., Any]:
        """Materialize the closure tree against a stats sink.

        Returns a callable taking one value (or thunk) per declared free
        name and returning the evaluation result (unforced, like
        ``Evaluator.eval``)."""
        code = self._builder(stats)
        expected = len(self.free_names)
        names = self.free_names

        if expected == 0:

            def entry0() -> Any:
                return code(())

            return entry0

        def entry(*frame: Any) -> Any:
            if len(frame) != expected:
                raise TypeError(
                    f"compiled program expects {expected} frame value(s) "
                    f"({', '.join(names)}), got {len(frame)}"
                )
            return code(frame)

        return entry


def compile_term(
    term: Term,
    free_names: Sequence[str] = (),
    strict: bool = False,
) -> StagedProgram:
    """Stage ``term`` (phase 1).  ``free_names`` are the variables the
    caller promises to supply at instantiation time, outermost first;
    any *other* free variable compiles to a runtime ``NameError``,
    matching the interpreter's late failure."""
    names = tuple(free_names)
    return StagedProgram(term, names, strict, _compile(term, names, strict))


def compile_value(
    term: Term,
    strict: bool = False,
    stats: Optional[EvalStats] = None,
) -> Any:
    """Compile a closed term and evaluate it to a (forced) value -- the
    compiled counterpart of :func:`repro.semantics.eval.evaluate`."""
    return force(compile_term(term, (), strict).instantiate(stats)())
