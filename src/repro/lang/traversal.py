"""Syntactic traversals: free variables, substitution, α-equivalence,
spines, sizes, and the hygiene rename required by ``Derive``.

The paper assumes "the original program contains no variable names that
start with d" (Sec. 3.2); ``rename_d_variables`` establishes that invariant
mechanically so user programs need not care.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterator, List, Set, Tuple

from repro.lang.terms import App, Const, Lam, Let, Lit, Term, Var


def free_variables(term: Term) -> FrozenSet[str]:
    """The free variables of ``term``."""
    result: Set[str] = set()
    _free_variables(term, frozenset(), result)
    return frozenset(result)


def _free_variables(term: Term, bound: FrozenSet[str], out: Set[str]) -> None:
    if isinstance(term, Var):
        if term.name not in bound:
            out.add(term.name)
    elif isinstance(term, Lam):
        _free_variables(term.body, bound | {term.param}, out)
    elif isinstance(term, App):
        _free_variables(term.fn, bound, out)
        _free_variables(term.arg, bound, out)
    elif isinstance(term, Let):
        _free_variables(term.bound, bound, out)
        _free_variables(term.body, bound | {term.name}, out)
    elif isinstance(term, (Const, Lit)):
        pass
    else:
        raise TypeError(f"unknown term node: {term!r}")


def is_closed(term: Term) -> bool:
    """True if ``term`` has no free variables -- the static condition under
    which its change is guaranteed nil (Sec. 4.2)."""
    return not free_variables(term)


def fresh_name(base: str, avoid: Set[str] | FrozenSet[str]) -> str:
    """A name not in ``avoid``, derived from ``base``."""
    if base not in avoid:
        return base
    index = 1
    while f"{base}_{index}" in avoid:
        index += 1
    return f"{base}_{index}"


def substitute(term: Term, name: str, replacement: Term) -> Term:
    """Capture-avoiding substitution ``term[name := replacement]``."""
    replacement_free = free_variables(replacement)
    return _substitute(term, name, replacement, replacement_free)


def _substitute(
    term: Term, name: str, replacement: Term, replacement_free: FrozenSet[str]
) -> Term:
    if isinstance(term, Var):
        return replacement if term.name == name else term
    if isinstance(term, (Const, Lit)):
        return term
    if isinstance(term, App):
        return App(
            _substitute(term.fn, name, replacement, replacement_free),
            _substitute(term.arg, name, replacement, replacement_free),
            pos=term.pos,
        )
    if isinstance(term, Lam):
        if term.param == name:
            return term
        if term.param in replacement_free:
            avoid = (
                replacement_free
                | free_variables(term.body)
                | {name, term.param}
            )
            new_param = fresh_name(term.param, avoid)
            renamed = _substitute(
                term.body,
                term.param,
                Var(new_param),
                frozenset({new_param}),
            )
            return Lam(
                new_param,
                _substitute(renamed, name, replacement, replacement_free),
                term.param_type,
                pos=term.pos,
                role=term.role,
            )
        return Lam(
            term.param,
            _substitute(term.body, name, replacement, replacement_free),
            term.param_type,
            pos=term.pos,
            role=term.role,
        )
    if isinstance(term, Let):
        new_bound = _substitute(term.bound, name, replacement, replacement_free)
        if term.name == name:
            return Let(term.name, new_bound, term.body, pos=term.pos)
        if term.name in replacement_free:
            avoid = (
                replacement_free
                | free_variables(term.body)
                | {name, term.name}
            )
            new_name = fresh_name(term.name, avoid)
            renamed = _substitute(
                term.body, term.name, Var(new_name), frozenset({new_name})
            )
            return Let(
                new_name,
                new_bound,
                _substitute(renamed, name, replacement, replacement_free),
                pos=term.pos,
            )
        return Let(
            term.name,
            new_bound,
            _substitute(term.body, name, replacement, replacement_free),
            pos=term.pos,
        )
    raise TypeError(f"unknown term node: {term!r}")


def alpha_equivalent(left: Term, right: Term) -> bool:
    """Structural equality up to renaming of bound variables."""
    return _alpha(left, right, {}, {})


def _alpha(
    left: Term, right: Term, left_env: Dict[str, int], right_env: Dict[str, int]
) -> bool:
    if isinstance(left, Var) and isinstance(right, Var):
        left_index = left_env.get(left.name)
        right_index = right_env.get(right.name)
        if left_index is None and right_index is None:
            return left.name == right.name
        return left_index == right_index
    if isinstance(left, Lam) and isinstance(right, Lam):
        depth = len(left_env)
        return _alpha(
            left.body,
            right.body,
            {**left_env, left.param: depth},
            {**right_env, right.param: depth},
        )
    if isinstance(left, App) and isinstance(right, App):
        return _alpha(left.fn, right.fn, left_env, right_env) and _alpha(
            left.arg, right.arg, left_env, right_env
        )
    if isinstance(left, Let) and isinstance(right, Let):
        if not _alpha(left.bound, right.bound, left_env, right_env):
            return False
        depth = len(left_env)
        return _alpha(
            left.body,
            right.body,
            {**left_env, left.name: depth},
            {**right_env, right.name: depth},
        )
    if isinstance(left, (Const, Lit)) and type(left) is type(right):
        return left == right
    return False


def subterms(term: Term) -> Iterator[Term]:
    """All subterms of ``term`` in pre-order (including itself)."""
    yield term
    if isinstance(term, Lam):
        yield from subterms(term.body)
    elif isinstance(term, App):
        yield from subterms(term.fn)
        yield from subterms(term.arg)
    elif isinstance(term, Let):
        yield from subterms(term.bound)
        yield from subterms(term.body)


def term_size(term: Term) -> int:
    """Number of AST nodes; the code-size metric of the Sec. 4.5 lesson."""
    return sum(1 for _ in subterms(term))


def spine(term: Term) -> Tuple[Term, List[Term]]:
    """Decompose nested applications: ``f a b c ↦ (f, [a, b, c])``."""
    arguments: List[Term] = []
    while isinstance(term, App):
        arguments.append(term.arg)
        term = term.fn
    arguments.reverse()
    return term, arguments


def unspine(head: Term, arguments: List[Term]) -> Term:
    """Rebuild nested applications from a head and argument list."""
    result = head
    for argument in arguments:
        result = App(result, argument)
    return result


def map_subterms(term: Term, fn: Callable[[Term], Term]) -> Term:
    """Rebuild ``term`` with ``fn`` applied to each immediate subterm."""
    if isinstance(term, Lam):
        return Lam(
            term.param, fn(term.body), term.param_type, pos=term.pos,
            role=term.role,
        )
    if isinstance(term, App):
        return App(fn(term.fn), fn(term.arg), pos=term.pos)
    if isinstance(term, Let):
        return Let(term.name, fn(term.bound), fn(term.body), pos=term.pos)
    return term


def bound_variables(term: Term) -> FrozenSet[str]:
    """All variable names bound anywhere inside ``term``."""
    result: Set[str] = set()
    for node in subterms(term):
        if isinstance(node, Lam):
            result.add(node.param)
        elif isinstance(node, Let):
            result.add(node.name)
    return frozenset(result)


def rename_d_variables(term: Term) -> Term:
    """α-rename every variable starting with ``d`` to a safe name.

    ``Derive`` names the change of ``x`` as ``dx``; the transformation is
    only hygienic if no source variable already starts with ``d``
    (Sec. 3.2).  Free variables are left untouched (the caller controls
    their names); bound ones are renamed to ``v_<original>``.
    """
    avoid = set(free_variables(term)) | set(bound_variables(term))
    return _rename_d(term, {}, avoid)


def _rename_d(term: Term, renaming: Dict[str, str], avoid: Set[str]) -> Term:
    if isinstance(term, Var):
        return Var(renaming.get(term.name, term.name), pos=term.pos)
    if isinstance(term, (Const, Lit)):
        return term
    if isinstance(term, App):
        return App(
            _rename_d(term.fn, renaming, avoid),
            _rename_d(term.arg, renaming, avoid),
            pos=term.pos,
        )
    if isinstance(term, Lam):
        new_param, inner = _rename_binder(term.param, renaming, avoid)
        return Lam(
            new_param,
            _rename_d(term.body, inner, avoid),
            term.param_type,
            pos=term.pos,
            role=term.role,
        )
    if isinstance(term, Let):
        new_bound = _rename_d(term.bound, renaming, avoid)
        new_name, inner = _rename_binder(term.name, renaming, avoid)
        return Let(
            new_name, new_bound, _rename_d(term.body, inner, avoid), pos=term.pos
        )
    raise TypeError(f"unknown term node: {term!r}")


def _rename_binder(
    name: str, renaming: Dict[str, str], avoid: Set[str]
) -> Tuple[str, Dict[str, str]]:
    if not name.startswith("d"):
        inner = dict(renaming)
        inner.pop(name, None)
        return name, inner
    new_name = fresh_name(f"v_{name}", avoid)
    avoid.add(new_name)
    inner = dict(renaming)
    inner[name] = new_name
    return new_name, inner


# -- hash-consing -------------------------------------------------------------

#: Weak table of canonical term nodes, keyed by full structural identity
#: (node kind, child *identities*, annotations, and source position).
#: Children appear by ``id``: they are interned first, so their identity
#: is their canonical representative, and any table entry that mentions a
#: child also holds it alive through the parent node (weak values die
#: bottom-up, so a live key never refers to a collected child).
_INTERN_TABLE: "weakref.WeakValueDictionary" = None  # type: ignore[assignment]


def intern_term(term: Term) -> Term:
    """Hash-cons ``term``: return a canonical node for each distinct
    subterm, so structurally equal trees share identity.

    Identity matters because the expensive passes memoize by ``id`` --
    ``analysis.framework.Dataflow`` keys its fact cache on
    ``(id(term), env)``, and the optimizer/deriver revisit shared
    subtrees -- so interning turns repeated derive/optimize/analyze
    passes over equal programs into O(1) cache hits.

    The canonical key includes the source position and, for constants,
    the spec identity: nodes that merely *compare* equal but carry
    different diagnostics (or resolve through different registries) are
    kept distinct so lint positions and fault injection stay exact.
    Literals with unhashable payloads are returned as-is.
    """
    return _intern(term, {})


def _intern(term: Term, seen: Dict[int, Term]) -> Term:
    global _INTERN_TABLE
    if _INTERN_TABLE is None:
        import weakref

        _INTERN_TABLE = weakref.WeakValueDictionary()

    cached = seen.get(id(term))
    if cached is not None:
        return cached

    candidate = term
    if isinstance(term, Var):
        key = ("V", term.name, term.pos)
    elif isinstance(term, Lam):
        body = _intern(term.body, seen)
        key = ("L", term.param, id(body), term.param_type, term.pos, term.role)
        if body is not term.body:
            candidate = Lam(
                term.param, body, term.param_type, pos=term.pos, role=term.role
            )
    elif isinstance(term, App):
        fn = _intern(term.fn, seen)
        arg = _intern(term.arg, seen)
        key = ("A", id(fn), id(arg), term.pos)
        if fn is not term.fn or arg is not term.arg:
            candidate = App(fn, arg, pos=term.pos)
    elif isinstance(term, Let):
        bound = _intern(term.bound, seen)
        body = _intern(term.body, seen)
        key = ("T", term.name, id(bound), id(body), term.pos)
        if bound is not term.bound or body is not term.body:
            candidate = Let(term.name, bound, body, pos=term.pos)
    elif isinstance(term, Const):
        key = ("C", term.spec.name, id(term.spec), term.pos)
    elif isinstance(term, Lit):
        key = ("I", type(term.value), term.value, term.type, term.pos)
    else:  # unknown extension node: leave it alone
        seen[id(term)] = term
        return term

    try:
        canonical = _INTERN_TABLE.get(key)
        if canonical is None:
            _INTERN_TABLE[key] = candidate
            canonical = candidate
    except TypeError:
        # Unhashable key component (e.g. a Lit wrapping a mutable host
        # value, or an unhashable type annotation): skip interning.
        canonical = candidate
    seen[id(term)] = canonical
    return canonical


def intern_table_size() -> int:
    """Number of live canonical nodes (diagnostic, used by tests)."""
    return 0 if _INTERN_TABLE is None else len(_INTERN_TABLE)
