"""Typing contexts Γ (Fig. 1) and change contexts ΔΓ (Fig. 4d).

A context maps variable names to types.  ``Context.change_context``
implements ``ΔΓ``: for each binding ``x : τ`` it adds ``dx : Δτ``, using
the plugin registry to compute ``Δτ`` for base types.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.lang.types import Type


class Context:
    """An immutable typing context."""

    __slots__ = ("_bindings",)

    def __init__(self, bindings: Dict[str, Type] | None = None):
        self._bindings = dict(bindings) if bindings else {}

    @staticmethod
    def empty() -> "Context":
        return Context()

    @staticmethod
    def of(**bindings: Type) -> "Context":
        return Context(bindings)

    def extend(self, name: str, ty: Type) -> "Context":
        bindings = dict(self._bindings)
        bindings[name] = ty
        return Context(bindings)

    def lookup(self, name: str) -> Optional[Type]:
        return self._bindings.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._bindings

    def __getitem__(self, name: str) -> Type:
        try:
            return self._bindings[name]
        except KeyError:
            raise KeyError(f"unbound variable: {name}") from None

    def names(self) -> Iterator[str]:
        return iter(self._bindings)

    def items(self) -> Iterator[Tuple[str, Type]]:
        return iter(self._bindings.items())

    def __len__(self) -> int:
        return len(self._bindings)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Context):
            return NotImplemented
        return self._bindings == other._bindings

    def __hash__(self) -> int:
        return hash(frozenset(self._bindings.items()))

    def change_context(self, change_type) -> "Context":
        """``ΔΓ``: for each ``x : τ`` also bind ``dx : Δτ`` (Fig. 4d).

        ``change_type`` maps a type to its change type (usually
        ``repro.derive.change_types.change_type`` partially applied to a
        registry).  The result contains *both* Γ and ΔΓ, matching the
        typing rule ``Γ, ΔΓ ⊢ Derive(t) : Δτ``.
        """
        bindings = dict(self._bindings)
        for name, ty in self._bindings.items():
            bindings[f"d{name}"] = change_type(ty)
        return Context(bindings)

    def __repr__(self) -> str:
        if not self._bindings:
            return "Context()"
        body = ", ".join(
            f"{name}: {ty!r}" for name, ty in sorted(self._bindings.items())
        )
        return f"Context({body})"
