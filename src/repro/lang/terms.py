"""Terms of the object language (Fig. 1: ``t ::= c | λx. t | t t | x``).

Two practical extensions over the paper's grammar:

* ``Lit`` embeds ground host values (integers, booleans, bags, groups…) as
  literals; semantically each literal is a nullary constant.
* ``Let`` is the usual sugar ``let x = s in t``; ``Derive`` handles it
  directly (producing ``let x = s; dx = Derive(s) in Derive(t)``) so that
  sharing survives differentiation.

Terms are immutable and compare structurally (by bound-variable *name*;
α-equivalence is a separate predicate in ``traversal``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, TYPE_CHECKING

from repro.lang.types import Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.plugins.base import ConstantSpec


@dataclass(frozen=True)
class Pos:
    """A 1-based source position (line, column) from the lexer.

    Positions are metadata: they are excluded from term equality/hashing so
    that structurally identical terms stay interchangeable regardless of
    where (or whether) they were parsed.
    """

    line: int
    column: int

    def __repr__(self) -> str:
        return f"{self.line}:{self.column}"


class Term:
    """Base class of object-language terms."""

    __slots__ = ()

    def __call__(self, *arguments: "Term") -> "Term":
        """Application sugar: ``f(a, b)`` builds ``App(App(f, a), b)``."""
        result: Term = self
        for argument in arguments:
            result = App(result, _as_term(argument))
        return result


def _as_term(value: Any) -> Term:
    """Coerce Python scalars to literals so builders read naturally."""
    if isinstance(value, Term):
        return value
    from repro.lang.types import TBool, TInt

    if isinstance(value, bool):
        return Lit(value, TBool)
    if isinstance(value, int):
        return Lit(value, TInt)
    raise TypeError(f"cannot coerce {value!r} to a term")


@dataclass(frozen=True)
class Var(Term):
    """A variable reference."""

    name: str
    pos: Optional[Pos] = field(default=None, compare=False, repr=False)

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Lam(Term):
    """λ-abstraction; the parameter annotation is optional (inference
    fills it in).

    ``role`` is Derive-stamped metadata: ``"base"`` on a binder that
    carries a base input of a derivative, ``"change"`` on the paired
    change binder (``x``/``dx`` in ``λx dx. …``).  Like ``pos`` it is
    excluded from equality/hashing; analyses use it to classify
    derivative parameters without guessing from spellings.
    """

    param: str
    body: Term
    param_type: Optional[Type] = None
    pos: Optional[Pos] = field(default=None, compare=False, repr=False)
    role: Optional[str] = field(default=None, compare=False, repr=False)

    def __repr__(self) -> str:
        if self.param_type is not None:
            return f"(\\{self.param}: {self.param_type!r} -> {self.body!r})"
        return f"(\\{self.param} -> {self.body!r})"


@dataclass(frozen=True)
class App(Term):
    """Application ``fn arg``."""

    fn: Term
    arg: Term
    pos: Optional[Pos] = field(default=None, compare=False, repr=False)

    def __repr__(self) -> str:
        return f"({self.fn!r} {self.arg!r})"


@dataclass(frozen=True)
class Let(Term):
    """``let name = bound in body`` (call-by-need sharing)."""

    name: str
    bound: Term
    body: Term
    pos: Optional[Pos] = field(default=None, compare=False, repr=False)

    def __repr__(self) -> str:
        return f"(let {self.name} = {self.bound!r} in {self.body!r})"


class Const(Term):
    """A primitive constant, carrying its plugin-supplied specification.

    Constants compare by name: two ``Const`` nodes naming the same primitive
    are the same constant even if resolved through different registry
    instances.
    """

    # __weakref__ lets the hash-consing table in ``traversal`` hold
    # canonical nodes without pinning them in memory.
    __slots__ = ("spec", "pos", "__weakref__")

    def __init__(self, spec: "ConstantSpec", pos: Optional[Pos] = None):
        self.spec = spec
        self.pos = pos

    @property
    def name(self) -> str:
        return self.spec.name

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Const):
            return NotImplemented
        return self.spec.name == other.spec.name

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash(("Const", self.spec.name))

    def __repr__(self) -> str:
        return self.spec.name


class Lit(Term):
    """A ground host value embedded as a literal of the given type."""

    __slots__ = ("value", "type", "pos", "__weakref__")

    def __init__(self, value: Any, type: Type, pos: Optional[Pos] = None):
        self.value = value
        self.type = type
        self.pos = pos

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Lit):
            return NotImplemented
        return (
            self.type == other.type
            and type(self.value) is type(other.value)
            and self.value == other.value
        )

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        try:
            return hash(("Lit", self.value, self.type))
        except TypeError:
            return hash(("Lit", self.type))

    def __repr__(self) -> str:
        return repr(self.value)
