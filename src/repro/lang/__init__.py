"""The object language: a simply-typed λ-calculus parameterized by plugins.

Implements Fig. 1 of the paper (syntax and typing) plus the conveniences a
practical implementation needs: a unification-based type inference engine
(so plugin constants can be given polymorphic *schemas* while every term
instance remains simply typed, mirroring the paper's "family of base types"
trick), a surface-syntax parser, a precedence-aware pretty-printer, and a
builder DSL for embedding object terms in Python.
"""

from repro.lang.terms import App, Const, Lam, Let, Lit, Term, Var
from repro.lang.types import (
    Schema,
    TBag,
    TBool,
    TChange,
    TFun,
    TGroup,
    TInt,
    TMap,
    TPair,
    TSum,
    TVar,
    TBase,
    Type,
    fun_type,
    result_type,
    uncurry_fun_type,
)
from repro.lang.context import Context
from repro.lang.traversal import (
    alpha_equivalent,
    free_variables,
    fresh_name,
    rename_d_variables,
    spine,
    substitute,
    subterms,
    term_size,
    unspine,
)

__all__ = [
    "App",
    "Const",
    "Context",
    "Lam",
    "Let",
    "Lit",
    "Schema",
    "TBag",
    "TBase",
    "TBool",
    "TChange",
    "TFun",
    "TGroup",
    "TInt",
    "TMap",
    "TPair",
    "TSum",
    "TVar",
    "Term",
    "Type",
    "Var",
    "alpha_equivalent",
    "free_variables",
    "fresh_name",
    "fun_type",
    "rename_d_variables",
    "result_type",
    "spine",
    "substitute",
    "subterms",
    "term_size",
    "uncurry_fun_type",
    "unspine",
]
