"""A small builder DSL for embedding object terms in Python.

The paper embeds its object language as an EDSL in Scala (Sec. 4.1); this
module plays the same role for Python::

    from repro.lang.builders import lam, let, v

    grand_total = lam("xs", "ys")(
        fold_bag(G_PLUS, id_int, merge(v.xs, v.ys))
    )

``v.name`` (or ``v["name"]``) builds a variable; ``lam("x", "y")(body)``
builds nested λs; every ``Term`` is callable, so ``f(a, b)`` is
application.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Union

from repro.lang.terms import App, Lam, Let, Lit, Term, Var, _as_term
from repro.lang.types import TBool, TInt, Type


class _VarFactory:
    """Attribute access mints variables: ``v.xs == Var('xs')``."""

    def __getattr__(self, name: str) -> Var:
        if name.startswith("__"):
            raise AttributeError(name)
        return Var(name)

    def __getitem__(self, name: str) -> Var:
        return Var(name)


v = _VarFactory()


def lam(*params: Union[str, tuple]) -> Callable[[Any], Term]:
    """Build nested λs: ``lam("x", ("y", TInt))(body)``.

    Each parameter is either a bare name or a ``(name, type)`` pair.
    Returns a function awaiting the body, so usage reads like a binder.
    """
    if not params:
        raise ValueError("lam needs at least one parameter")

    def build(body: Any) -> Term:
        term = _as_term(body)
        for param in reversed(params):
            if isinstance(param, tuple):
                name, annotation = param
                term = Lam(name, term, annotation)
            else:
                term = Lam(param, term)
        return term

    return build


def let(name: str, bound: Any, body: Any) -> Let:
    """``let name = bound in body``."""
    return Let(name, _as_term(bound), _as_term(body))


def lit(value: Any, ty: Optional[Type] = None) -> Lit:
    """Embed a host value as a literal, inferring ``Int``/``Bool`` types."""
    if ty is not None:
        return Lit(value, ty)
    if isinstance(value, bool):
        return Lit(value, TBool)
    if isinstance(value, int):
        return Lit(value, TInt)
    raise TypeError(f"cannot infer a type for literal {value!r}; pass ty=")


def app(fn: Any, *arguments: Any) -> Term:
    """Left-nested application ``fn a₁ … aₙ``."""
    term = _as_term(fn)
    for argument in arguments:
        term = App(term, _as_term(argument))
    return term
