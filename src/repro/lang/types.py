"""Types of the object language (Fig. 1: ``τ ::= ι | τ → τ``).

Base types ``ι`` are plugin-supplied constructors; we model them uniformly
as ``TBase(name, args)`` so collection types like ``Bag σ`` and ``Map κ ν``
are families of base types indexed by their element types, exactly the
trick the paper uses to "simulate polymorphic collections even though the
object language is simply-typed" (Sec. 4.1).

``TVar`` appears only inside constant *schemas* and during inference; a
fully inferred term mentions no type variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple


class Type:
    """Base class of object-language types."""

    __slots__ = ()

    def __rshift__(self, other: "Type") -> "TFun":
        """``a >> b`` builds the function type ``a → b``."""
        return TFun(self, other)


@dataclass(frozen=True)
class TVar(Type):
    """A type variable (only inside schemas / during unification)."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class TFun(Type):
    """The function type ``arg → res``."""

    arg: Type
    res: Type

    def __repr__(self) -> str:
        arg = f"({self.arg!r})" if isinstance(self.arg, TFun) else f"{self.arg!r}"
        return f"{arg} -> {self.res!r}"


@dataclass(frozen=True)
class TBase(Type):
    """A (possibly parameterized) base type, e.g. ``Int`` or ``Bag Int``."""

    name: str
    args: Tuple[Type, ...] = ()

    def __repr__(self) -> str:
        if not self.args:
            return self.name
        inner = " ".join(
            f"({arg!r})" if isinstance(arg, (TFun, TBase)) and _needs_parens(arg)
            else f"{arg!r}"
            for arg in self.args
        )
        return f"{self.name} {inner}"


def _needs_parens(ty: Type) -> bool:
    if isinstance(ty, TFun):
        return True
    if isinstance(ty, TBase):
        return bool(ty.args)
    return False


# -- Standard base-type constructors ------------------------------------------

TInt = TBase("Int")
TBool = TBase("Bool")


def TBag(element: Type) -> TBase:
    """``Bag σ``: bags with signed multiplicities over ``σ``."""
    return TBase("Bag", (element,))


def TMap(key: Type, value: Type) -> TBase:
    """``Map κ ν``: finite maps."""
    return TBase("Map", (key, value))


def TPair(left: Type, right: Type) -> TBase:
    """``σ × τ``: pairs."""
    return TBase("Pair", (left, right))


def TSum(left: Type, right: Type) -> TBase:
    """``σ + τ``: tagged unions."""
    return TBase("Sum", (left, right))


def TGroup(carrier: Type) -> TBase:
    """``Group τ``: a first-class abelian group on ``τ`` (Fig. 6)."""
    return TBase("Group", (carrier,))


def TChange(base: Type) -> TBase:
    """``Δι`` for a base type ι: the erased change type of Sec. 4.4,
    inhabited by ``Replace``/``GroupChange`` values."""
    return TBase("Change", (base,))


# -- Helpers --------------------------------------------------------------------

def fun_type(*types: Type) -> Type:
    """Right-associated function type: ``fun_type(a, b, c) = a → b → c``."""
    if not types:
        raise ValueError("fun_type needs at least one type")
    result = types[-1]
    for argument in reversed(types[:-1]):
        result = TFun(argument, result)
    return result


def uncurry_fun_type(ty: Type) -> Tuple[Tuple[Type, ...], Type]:
    """Split ``a → b → c`` into ``((a, b), c)``."""
    arguments = []
    while isinstance(ty, TFun):
        arguments.append(ty.arg)
        ty = ty.res
    return tuple(arguments), ty


def result_type(ty: Type, applied: int) -> Type:
    """The result of applying a value of type ``ty`` to ``applied`` args."""
    for _ in range(applied):
        if not isinstance(ty, TFun):
            raise TypeError(f"over-application: {ty!r} is not a function type")
        ty = ty.res
    return ty


def type_variables(ty: Type) -> Iterator[TVar]:
    """All type variables occurring in ``ty`` (with repetitions)."""
    if isinstance(ty, TVar):
        yield ty
    elif isinstance(ty, TFun):
        yield from type_variables(ty.arg)
        yield from type_variables(ty.res)
    elif isinstance(ty, TBase):
        for argument in ty.args:
            yield from type_variables(argument)


def apply_substitution(subst: Dict[str, Type], ty: Type) -> Type:
    """Apply a type substitution, resolving chains."""
    if isinstance(ty, TVar):
        replacement = subst.get(ty.name)
        if replacement is None:
            return ty
        resolved = apply_substitution(subst, replacement)
        return resolved
    if isinstance(ty, TFun):
        return TFun(
            apply_substitution(subst, ty.arg), apply_substitution(subst, ty.res)
        )
    if isinstance(ty, TBase):
        if not ty.args:
            return ty
        return TBase(
            ty.name,
            tuple(apply_substitution(subst, argument) for argument in ty.args),
        )
    raise TypeError(f"unknown type node: {ty!r}")


def is_ground(ty: Type) -> bool:
    """True if ``ty`` contains no type variables."""
    return next(iter(type_variables(ty)), None) is None


@dataclass(frozen=True)
class Schema:
    """A constant's type schema: quantified variables plus a type skeleton.

    The object language stays simply typed; schemas exist so one ``Const``
    like ``merge`` can be used at ``Bag Int`` and ``Bag (Pair Int Int)``
    alike, with inference instantiating the variables per occurrence.
    """

    vars: Tuple[str, ...]
    type: Type

    @staticmethod
    def mono(ty: Type) -> "Schema":
        """A monomorphic schema (no quantified variables)."""
        return Schema((), ty)

    def instantiate(self, fresh: "TypeVarSupply") -> Type:
        """Replace quantified variables with fresh ones."""
        if not self.vars:
            return self.type
        mapping = {name: fresh.fresh(name) for name in self.vars}
        return apply_substitution(mapping, self.type)

    def __repr__(self) -> str:
        if self.vars:
            quantified = " ".join(self.vars)
            return f"forall {quantified}. {self.type!r}"
        return repr(self.type)


class TypeVarSupply:
    """A supply of fresh type variables for schema instantiation."""

    def __init__(self, prefix: str = "?"):
        self._prefix = prefix
        self._counter = 0

    def fresh(self, hint: str = "t") -> TVar:
        self._counter += 1
        return TVar(f"{self._prefix}{hint}{self._counter}")
