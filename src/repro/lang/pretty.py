"""Precedence-aware pretty-printer for terms and types.

Produces the surface syntax accepted by ``repro.lang.parser``, so that
``parse(pretty(t))`` is α-equivalent to ``t`` (a property test).
"""

from __future__ import annotations

from repro.data.bag import Bag
from repro.lang.terms import App, Const, Lam, Let, Lit, Term, Var
from repro.lang.types import TBase, TFun, TVar, Type

_ATOM = 3
_APP = 2
_LAM = 0


def pretty_type(ty: Type, precedence: int = 0) -> str:
    """Render a type; ``precedence`` > 0 forces parentheses on arrows."""
    if isinstance(ty, TVar):
        return ty.name
    if isinstance(ty, TFun):
        rendered = (
            f"{pretty_type(ty.arg, 1)} -> {pretty_type(ty.res, 0)}"
        )
        return f"({rendered})" if precedence > 0 else rendered
    if isinstance(ty, TBase):
        if not ty.args:
            return ty.name
        inner = " ".join(pretty_type(arg, 2) for arg in ty.args)
        rendered = f"{ty.name} {inner}"
        return f"({rendered})" if precedence > 1 else rendered
    raise TypeError(f"unknown type node: {ty!r}")


def pretty(term: Term, precedence: int = _LAM) -> str:
    """Render a term in the surface syntax."""
    if isinstance(term, Var):
        return term.name
    if isinstance(term, Const):
        return term.spec.name
    if isinstance(term, Lit):
        return _pretty_literal(term)
    if isinstance(term, App):
        rendered = f"{pretty(term.fn, _APP)} {pretty(term.arg, _ATOM)}"
        return f"({rendered})" if precedence > _APP else rendered
    if isinstance(term, Lam):
        params = []
        body: Term = term
        while isinstance(body, Lam):
            if body.param_type is not None:
                params.append(f"({body.param}: {pretty_type(body.param_type)})")
            else:
                params.append(body.param)
            body = body.body
        rendered = f"\\{' '.join(params)} -> {pretty(body, _LAM)}"
        return f"({rendered})" if precedence > _LAM else rendered
    if isinstance(term, Let):
        rendered = (
            f"let {term.name} = {pretty(term.bound, _LAM)} "
            f"in {pretty(term.body, _LAM)}"
        )
        return f"({rendered})" if precedence > _LAM else rendered
    raise TypeError(f"unknown term node: {term!r}")


def _pretty_literal(term: Lit) -> str:
    value = term.value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value) if value >= 0 else f"({value})"
    if isinstance(value, tuple) and len(value) == 2 and isinstance(
        term.type, TBase
    ) and term.type.name == "Pair":
        left = _pretty_literal(Lit(value[0], term.type.args[0]))
        right = _pretty_literal(Lit(value[1], term.type.args[1]))
        return f"({left}, {right})"
    if isinstance(value, Bag):
        parts = []
        for element, count in sorted(
            value.counts(), key=lambda kv: repr(kv[0])
        ):
            rendered = (
                str(element)
                if isinstance(element, int) and element >= 0
                else f"({element})"
                if isinstance(element, int)
                else repr(element)
            )
            if count >= 0:
                parts.extend([rendered] * count)
            else:
                parts.extend([f"~{rendered}"] * (-count))
        return "{{" + ", ".join(parts) + "}}"
    # Opaque host values (groups, maps, changes) have no surface syntax.
    return f"<lit {value!r} : {pretty_type(term.type)}>"
