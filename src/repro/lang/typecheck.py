"""A checking-mode typechecker for fully annotated terms (Fig. 1b).

Inference (``infer.py``) is the convenient front door; this module is the
simple, independently auditable checker used to validate inference results
and -- crucially -- to verify the ``Derive`` typing rule of Sec. 3.2:

    Γ ⊢ t : τ
    ─────────────────────────
    Γ, ΔΓ ⊢ Derive(t) : Δτ
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ReproError
from repro.lang.context import Context
from repro.lang.infer import Unifier
from repro.lang.terms import App, Const, Lam, Let, Lit, Term, Var
from repro.lang.types import TFun, Type, TypeVarSupply


class TypeCheckError(ReproError, TypeError):
    """A type error detected while checking an annotated term."""


def check(term: Term, context: Optional[Context] = None) -> Type:
    """Compute the type of a fully annotated ``term`` under ``context``.

    Every λ binder must carry a parameter type.  Constant occurrences are
    checked against (an instance of) their schema: the instance is solved
    locally by unification against the surrounding applications, which the
    checker performs one spine at a time.
    """
    ctx = context if context is not None else Context.empty()
    return _check(term, ctx)


def _check(term: Term, context: Context) -> Type:
    if isinstance(term, Var):
        ty = context.lookup(term.name)
        if ty is None:
            raise TypeCheckError(f"unbound variable: {term.name}")
        return ty
    if isinstance(term, Lit):
        return term.type
    if isinstance(term, Const):
        schema = term.spec.schema
        if schema.vars:
            raise TypeCheckError(
                f"constant {term.spec.name} is polymorphic; it can only be "
                "checked at an application spine (or use inference)"
            )
        return schema.type
    if isinstance(term, Lam):
        if term.param_type is None:
            raise TypeCheckError(
                f"unannotated λ binder {term.param!r}; run inference first"
            )
        body_type = _check(
            term.body, context.extend(term.param, term.param_type)
        )
        return TFun(term.param_type, body_type)
    if isinstance(term, App):
        return _check_spine(term, context)
    if isinstance(term, Let):
        bound_type = _check(term.bound, context)
        return _check(term.body, context.extend(term.name, bound_type))
    raise TypeCheckError(f"unknown term node: {term!r}")


def _check_spine(term: App, context: Context) -> Type:
    """Check an application spine, instantiating a polymorphic head constant
    against the argument types via local unification."""
    from repro.lang.traversal import spine

    head, arguments = spine(term)
    if isinstance(head, Const) and head.spec.schema.vars:
        unifier = Unifier()
        supply = TypeVarSupply("!")
        head_type: Type = head.spec.schema.instantiate(supply)
        for argument in arguments:
            if isinstance(argument, Const) and argument.spec.schema.vars:
                # Polymorphic constants passed as arguments (e.g. ``id`` to
                # ``foldBag``) are instantiated against this spine's unifier.
                argument_type: Type = argument.spec.schema.instantiate(supply)
            else:
                argument_type = _check(argument, context)
            head_type = unifier.resolve(head_type)
            if not isinstance(head_type, TFun):
                raise TypeCheckError(
                    f"over-applied constant {head.spec.name}: "
                    f"{head_type!r} applied to {argument!r}"
                )
            try:
                unifier.unify(head_type.arg, argument_type)
            except TypeError as error:
                raise TypeCheckError(
                    f"argument {argument!r} of {head.spec.name}: {error}"
                ) from error
            head_type = head_type.res
        result = unifier.zonk(head_type)
        return result
    fn_type = _check(term.fn, context)
    arg_type = _check(term.arg, context)
    if not isinstance(fn_type, TFun):
        raise TypeCheckError(
            f"cannot apply non-function {term.fn!r} : {fn_type!r}"
        )
    if fn_type.arg != arg_type:
        # Fall back to unification so polymorphic sub-spines interoperate.
        unifier = Unifier()
        try:
            unifier.unify(fn_type.arg, arg_type)
        except TypeError as error:
            raise TypeCheckError(
                f"argument type mismatch in {term!r}: expected "
                f"{fn_type.arg!r}, got {arg_type!r}"
            ) from error
    return fn_type.res
