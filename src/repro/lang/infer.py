"""Unification-based type inference for the object language.

Every term instance is simply typed (Fig. 1), but plugin constants carry
polymorphic schemas (e.g. ``merge : ∀a. Bag a → Bag a → Bag a``) so the
same primitive works at many base types -- the paper's "family of base
types" exposed by the plugin (Sec. 4.1).  Inference instantiates schemas
with fresh variables, solves the usual unification constraints, and
returns a fully annotated term in which every λ binder carries its
(ground) parameter type.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import ReproError
from repro.lang.context import Context
from repro.lang.terms import App, Const, Lam, Let, Lit, Term, Var
from repro.lang.types import (
    TBase,
    TFun,
    TVar,
    Type,
    TypeVarSupply,
    is_ground,
)


class InferenceError(ReproError, TypeError):
    """A type error detected during inference."""


class UnificationError(InferenceError):
    """Two types could not be unified."""

    def __init__(self, left: Type, right: Type, context: str = ""):
        detail = f" ({context})" if context else ""
        super().__init__(f"cannot unify {left!r} with {right!r}{detail}")
        self.left = left
        self.right = right


class OccursCheckError(InferenceError):
    """A type variable occurs inside the type it would be bound to."""

    def __init__(self, var: TVar, ty: Type):
        super().__init__(f"occurs check: {var!r} in {ty!r}")


class AmbiguousTypeError(InferenceError):
    """Inference succeeded but left an unconstrained type variable."""


class Unifier:
    """A mutable union-find-free substitution with eager path resolution."""

    def __init__(self) -> None:
        self._subst: Dict[str, Type] = {}

    def resolve(self, ty: Type) -> Type:
        """Follow substitution links on the head of ``ty``."""
        while isinstance(ty, TVar):
            replacement = self._subst.get(ty.name)
            if replacement is None:
                return ty
            ty = replacement
        return ty

    def zonk(self, ty: Type) -> Type:
        """Fully apply the substitution throughout ``ty``."""
        ty = self.resolve(ty)
        if isinstance(ty, TFun):
            return TFun(self.zonk(ty.arg), self.zonk(ty.res))
        if isinstance(ty, TBase):
            if not ty.args:
                return ty
            return TBase(ty.name, tuple(self.zonk(arg) for arg in ty.args))
        return ty

    def unify(self, left: Type, right: Type, context: str = "") -> None:
        left = self.resolve(left)
        right = self.resolve(right)
        if left == right:
            return
        if isinstance(left, TVar):
            self._bind(left, right)
            return
        if isinstance(right, TVar):
            self._bind(right, left)
            return
        if isinstance(left, TFun) and isinstance(right, TFun):
            self.unify(left.arg, right.arg, context)
            self.unify(left.res, right.res, context)
            return
        if (
            isinstance(left, TBase)
            and isinstance(right, TBase)
            and left.name == right.name
            and len(left.args) == len(right.args)
        ):
            for left_arg, right_arg in zip(left.args, right.args):
                self.unify(left_arg, right_arg, context)
            return
        raise UnificationError(self.zonk(left), self.zonk(right), context)

    def _bind(self, var: TVar, ty: Type) -> None:
        if self._occurs(var, ty):
            raise OccursCheckError(var, self.zonk(ty))
        self._subst[var.name] = ty

    def _occurs(self, var: TVar, ty: Type) -> bool:
        ty = self.resolve(ty)
        if isinstance(ty, TVar):
            return ty.name == var.name
        if isinstance(ty, TFun):
            return self._occurs(var, ty.arg) or self._occurs(var, ty.res)
        if isinstance(ty, TBase):
            return any(self._occurs(var, arg) for arg in ty.args)
        return False


class _Inferencer:
    def __init__(self) -> None:
        self.unifier = Unifier()
        self.supply = TypeVarSupply()

    def annotate(self, term: Term, env: Dict[str, Type]) -> Term:
        """Rebuild ``term`` with every λ binder carrying its zonked type."""
        if isinstance(term, (Var, Lit, Const)):
            return term
        if isinstance(term, Lam):
            param_type: Type = (
                term.param_type
                if term.param_type is not None
                else self._binder_types[id(term)]
            )
            param_type = self.unifier.zonk(param_type)
            inner = dict(env)
            inner[term.param] = param_type
            return Lam(
                term.param,
                self.annotate(term.body, inner),
                param_type,
                pos=term.pos,
                role=term.role,
            )
        if isinstance(term, App):
            return App(
                self.annotate(term.fn, env),
                self.annotate(term.arg, env),
                pos=term.pos,
            )
        if isinstance(term, Let):
            return Let(
                term.name,
                self.annotate(term.bound, env),
                self.annotate(term.body, env),
                pos=term.pos,
            )
        raise InferenceError(f"unknown term node: {term!r}")

    _binder_types: Dict[int, Type]

    def run(self, term: Term, env: Dict[str, Type]) -> Tuple[Term, Type]:
        self._binder_types = {}
        ty = self._infer_remembering(term, env)
        annotated = self.annotate(term, env)
        zonked = self.unifier.zonk(ty)
        return annotated, zonked

    def _infer_remembering(self, term: Term, env: Dict[str, Type]) -> Type:
        """Infer ``term``'s type, recording each λ's parameter type by
        node id so ``annotate`` can fill binders in afterwards."""
        if isinstance(term, Var):
            ty = env.get(term.name)
            if ty is None:
                raise InferenceError(f"unbound variable: {term.name}")
            return ty
        if isinstance(term, Lit):
            return term.type
        if isinstance(term, Const):
            return term.spec.schema.instantiate(self.supply)
        if isinstance(term, Lam):
            param_type: Type = (
                term.param_type
                if term.param_type is not None
                else self.supply.fresh(term.param)
            )
            self._binder_types[id(term)] = param_type
            inner = dict(env)
            inner[term.param] = param_type
            body_type = self._infer_remembering(term.body, inner)
            return TFun(param_type, body_type)
        if isinstance(term, App):
            fn_type = self._infer_remembering(term.fn, env)
            arg_type = self._infer_remembering(term.arg, env)
            result = self.supply.fresh("r")
            self.unifier.unify(
                fn_type, TFun(arg_type, result), f"applying {term.fn!r}"
            )
            return result
        if isinstance(term, Let):
            bound_type = self._infer_remembering(term.bound, env)
            inner = dict(env)
            inner[term.name] = bound_type
            return self._infer_remembering(term.body, inner)
        raise InferenceError(f"unknown term node: {term!r}")


def infer_type(
    term: Term,
    context: Optional[Context] = None,
    require_ground: bool = True,
) -> Tuple[Term, Type]:
    """Infer the type of ``term`` under ``context``.

    Returns ``(annotated_term, type)`` where every λ binder in the
    annotated term carries a concrete parameter type.  Raises
    ``AmbiguousTypeError`` when an unconstrained type variable remains
    (e.g. the type of ``λx. x`` in isolation) unless ``require_ground`` is
    False.
    """
    env: Dict[str, Type] = dict(context.items()) if context is not None else {}
    inferencer = _Inferencer()
    annotated, ty = inferencer.run(term, env)
    if require_ground and not is_ground(ty):
        raise AmbiguousTypeError(
            f"inferred type {ty!r} for {term!r} is not ground; "
            "add annotations or a type context"
        )
    if require_ground and not _binders_ground(annotated):
        raise AmbiguousTypeError(
            f"some λ binders in {annotated!r} have ambiguous types; "
            "add annotations"
        )
    return annotated, ty


def _binders_ground(term: Term) -> bool:
    if isinstance(term, Lam):
        if term.param_type is None or not is_ground(term.param_type):
            return False
        return _binders_ground(term.body)
    if isinstance(term, App):
        return _binders_ground(term.fn) and _binders_ground(term.arg)
    if isinstance(term, Let):
        return _binders_ground(term.bound) and _binders_ground(term.body)
    return True


def type_of(term: Term, context: Optional[Context] = None) -> Type:
    """The inferred type of ``term`` (convenience wrapper)."""
    _, ty = infer_type(term, context)
    return ty
