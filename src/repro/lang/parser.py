"""Recursive-descent parser for the surface syntax.

Identifiers are resolved against an optional plugin registry: names of
registered constants become ``Const`` nodes, every other identifier is a
``Var``.  This mirrors the paper's EDSL embedding, where the metalanguage
environment decides which names denote primitives.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ReproError
from repro.data.bag import Bag
from repro.lang.lexer import Token, tokenize
from repro.lang.terms import App, Const, Lam, Let, Lit, Pos, Term, Var
from repro.lang.types import TBag, TBase, TBool, TFun, TInt, TPair, Type


class ParseError(ReproError, SyntaxError):
    """A syntax error with position information."""

    def __init__(self, message: str, token: Token):
        super().__init__(f"{message} at {token.line}:{token.column}")
        self.token = token


_ATOM_STARTERS = {"IDENT", "INT", "LPAREN", "LBAG"}


def _pos(token: Token) -> Pos:
    return Pos(token.line, token.column)


class Parser:
    def __init__(self, tokens: List[Token], registry=None):
        self._tokens = tokens
        self._position = 0
        self._registry = registry

    # -- token plumbing ----------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._position]

    def _advance(self) -> Token:
        token = self._tokens[self._position]
        self._position += 1
        return token

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self._peek()
        if token.kind != kind or (text is not None and token.text != text):
            expected = text if text is not None else kind
            raise ParseError(f"expected {expected}, found {token.text!r}", token)
        return self._advance()

    def _at_keyword(self, word: str) -> bool:
        token = self._peek()
        return token.kind == "KEYWORD" and token.text == word

    # -- terms -------------------------------------------------------------

    def parse_term(self) -> Term:
        token = self._peek()
        if token.kind == "LAMBDA":
            return self._parse_lambda()
        if self._at_keyword("let"):
            return self._parse_let()
        return self._parse_application()

    def _parse_lambda(self) -> Term:
        self._expect("LAMBDA")
        binders = [self._parse_binder()]
        while self._peek().kind in ("IDENT", "LPAREN"):
            binders.append(self._parse_binder())
        self._expect("ARROW")
        body = self.parse_term()
        for name, annotation, position in reversed(binders):
            body = Lam(name, body, annotation, pos=position)
        return body

    def _parse_binder(self):
        token = self._peek()
        if token.kind == "IDENT":
            self._advance()
            return token.text, None, _pos(token)
        if token.kind == "LPAREN":
            self._advance()
            name_token = self._expect("IDENT")
            self._expect("COLON")
            annotation = self.parse_type()
            self._expect("RPAREN")
            return name_token.text, annotation, _pos(name_token)
        raise ParseError("expected a λ binder", token)

    def _parse_let(self) -> Term:
        keyword = self._expect("KEYWORD", "let")
        name = self._expect("IDENT").text
        self._expect("EQUALS")
        bound = self.parse_term()
        if not self._at_keyword("in"):
            raise ParseError("expected 'in'", self._peek())
        self._advance()
        body = self.parse_term()
        return Let(name, bound, body, pos=_pos(keyword))

    def _parse_application(self) -> Term:
        start = self._peek()
        term = self._parse_atom()
        while True:
            token = self._peek()
            if token.kind in _ATOM_STARTERS or (
                token.kind == "KEYWORD" and token.text in ("true", "false")
            ):
                # Applications carry the position of the spine's head, so
                # diagnostics about `f a b` point at `f`.
                term = App(term, self._parse_atom(), pos=_pos(start))
            else:
                return term

    def _parse_atom(self) -> Term:
        token = self._peek()
        if token.kind == "IDENT":
            self._advance()
            return self._resolve(token.text, token)
        if token.kind == "INT":
            self._advance()
            return Lit(int(token.text), TInt, pos=_pos(token))
        if token.kind == "KEYWORD" and token.text in ("true", "false"):
            self._advance()
            return Lit(token.text == "true", TBool, pos=_pos(token))
        if token.kind == "LBAG":
            return self._parse_bag()
        if token.kind == "LPAREN":
            self._advance()
            inner = self.parse_term()
            if self._peek().kind == "COMMA":
                self._advance()
                second = self.parse_term()
                self._expect("RPAREN")
                return self._make_pair(inner, second, token)
            self._expect("RPAREN")
            return inner
        raise ParseError(f"unexpected token {token.text!r}", token)

    def _make_pair(self, first: Term, second: Term, token: Token) -> Term:
        """``(a, b)``: a literal when both components are literals,
        otherwise sugar for ``pair a b``."""
        if isinstance(first, Lit) and isinstance(second, Lit):
            return Lit(
                (first.value, second.value),
                TPair(first.type, second.type),
                pos=_pos(token),
            )
        if self._registry is not None:
            spec = self._registry.lookup_constant("pair")
            if spec is not None:
                head: Term = Const(spec, pos=_pos(token))
                return App(App(head, first, pos=_pos(token)), second, pos=_pos(token))
        return App(
            App(Var("pair", pos=_pos(token)), first, pos=_pos(token)),
            second,
            pos=_pos(token),
        )

    def _resolve(self, name: str, token: Token) -> Term:
        if self._registry is not None:
            spec = self._registry.lookup_constant(name)
            if spec is not None:
                return Const(spec, pos=_pos(token))
        return Var(name, pos=_pos(token))

    def _parse_bag(self) -> Term:
        start = self._expect("LBAG")
        counts = {}
        if self._peek().kind != "RBAG":
            while True:
                negative = False
                if self._peek().kind == "TILDE":
                    self._advance()
                    negative = True
                element_token = self._peek()
                if element_token.kind == "INT":
                    self._advance()
                    element = int(element_token.text)
                elif element_token.kind == "LPAREN":
                    self._advance()
                    element = int(self._expect("INT").text)
                    self._expect("RPAREN")
                else:
                    raise ParseError(
                        "bag literals may only contain integers", element_token
                    )
                counts[element] = counts.get(element, 0) + (-1 if negative else 1)
                if self._peek().kind == "COMMA":
                    self._advance()
                    continue
                break
        self._expect("RBAG")
        return Lit(Bag(counts), TBag(TInt), pos=_pos(start))

    # -- types ----------------------------------------------------------------

    def parse_type(self) -> Type:
        left = self._parse_type_application()
        if self._peek().kind == "ARROW":
            self._advance()
            return TFun(left, self.parse_type())
        return left

    def _parse_type_application(self) -> Type:
        token = self._peek()
        if token.kind == "IDENT" and token.text[0].isupper():
            self._advance()
            arguments = []
            while True:
                next_token = self._peek()
                if next_token.kind == "IDENT" and next_token.text[0].isupper():
                    self._advance()
                    arguments.append(TBase(next_token.text))
                elif next_token.kind == "LPAREN":
                    self._advance()
                    arguments.append(self.parse_type())
                    self._expect("RPAREN")
                else:
                    break
            return TBase(token.text, tuple(arguments))
        return self._parse_type_atom()

    def _parse_type_atom(self) -> Type:
        token = self._peek()
        if token.kind == "IDENT":
            self._advance()
            return TBase(token.text)
        if token.kind == "LPAREN":
            self._advance()
            inner = self.parse_type()
            self._expect("RPAREN")
            return inner
        raise ParseError(f"expected a type, found {token.text!r}", token)


def parse(source: str, registry=None) -> Term:
    """Parse a term from ``source``, resolving constants via ``registry``."""
    parser = Parser(tokenize(source), registry)
    term = parser.parse_term()
    parser._expect("EOF")
    return term


def parse_type(source: str) -> Type:
    """Parse a type from ``source``."""
    parser = Parser(tokenize(source))
    ty = parser.parse_type()
    parser._expect("EOF")
    return ty
