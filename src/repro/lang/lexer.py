"""Lexer for the surface syntax of the object language.

The surface language is a small Haskell-flavoured notation::

    \\xs ys -> foldBag gplus idInt (merge xs ys)
    let total = foldBag gplus idInt xs in total
    {{1, 1, ~2}}        -- a bag: two 1s and a negative occurrence of 2

``--`` starts a line comment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List


class LexError(SyntaxError):
    """A lexical error with position information."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} at {line}:{column}")
        self.line = line
        self.column = column


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.line}:{self.column}"


KEYWORDS = {"let", "in", "true", "false"}

_SIMPLE = {
    "\\": "LAMBDA",
    "(": "LPAREN",
    ")": "RPAREN",
    ",": "COMMA",
    ":": "COLON",
    "=": "EQUALS",
    "~": "TILDE",
}


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``, appending a terminal EOF token."""
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    line = 1
    column = 1
    index = 0
    length = len(source)
    while index < length:
        char = source[index]
        if char == "\n":
            index += 1
            line += 1
            column = 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if source.startswith("--", index):
            while index < length and source[index] != "\n":
                index += 1
            continue
        if source.startswith("->", index):
            yield Token("ARROW", "->", line, column)
            index += 2
            column += 2
            continue
        if source.startswith("{{", index):
            yield Token("LBAG", "{{", line, column)
            index += 2
            column += 2
            continue
        if source.startswith("}}", index):
            yield Token("RBAG", "}}", line, column)
            index += 2
            column += 2
            continue
        if char in _SIMPLE:
            yield Token(_SIMPLE[char], char, line, column)
            index += 1
            column += 1
            continue
        if char.isdigit() or (
            char == "-" and index + 1 < length and source[index + 1].isdigit()
        ):
            start = index
            start_column = column
            if char == "-":
                index += 1
                column += 1
            while index < length and source[index].isdigit():
                index += 1
                column += 1
            yield Token("INT", source[start:index], line, start_column)
            continue
        if char.isalpha() or char == "_":
            start = index
            start_column = column
            while index < length and (
                source[index].isalnum() or source[index] in "_'"
            ):
                index += 1
                column += 1
            text = source[start:index]
            kind = "KEYWORD" if text in KEYWORDS else "IDENT"
            yield Token(kind, text, line, start_column)
            continue
        raise LexError(f"unexpected character {char!r}", line, column)
    yield Token("EOF", "", line, column)
