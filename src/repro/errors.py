"""The structured error taxonomy of the runtime.

The correctness theorem (Eq. 1) has two side conditions the type system
does not enforce at runtime: the change fed to a derivative must be
*valid* for the current input, and the derivative itself must be *total*
on its domain.  When either fails, the failure should surface as a typed
error carrying enough context to reproduce it -- the term, the step
number, and the offending change -- instead of escaping as a bare
``TypeError``/``RuntimeError`` from deep inside the interpreter.

The hierarchy::

    ReproError
    ├── InvalidChangeError     a change is malformed / incompatible (⊕ or
    │                          compose would be undefined)
    ├── DerivativeError        a derivative raised while reacting to a
    │                          change (a partial primitive, a plugin bug)
    ├── DriftError             incremental output diverged from
    │                          recomputation (Eq. 1 observed to fail)
    └── PluginContractError    a plugin violated its Sec. 3.7 contract
                               (conformance counterexample attached)

Existing layer-specific errors (``ParseError``, ``InferenceError``,
``TypeCheckError``, ``EvaluationError``, ``DeriveError``, …) adopt
``ReproError`` as an additional base, so ``except ReproError`` catches
every failure the framework itself can diagnose, while legacy handlers
catching their historical built-in bases keep working.

This module is a leaf: it must not import anything from ``repro`` at
module level (everything else imports *it*).
"""

from __future__ import annotations

from typing import Any, Optional


def _shorten(text: str, limit: int = 120) -> str:
    return text if len(text) <= limit else text[: limit - 1] + "…"


class ReproError(Exception):
    """Base class of all framework-diagnosed failures.

    Context is attached via keyword arguments and rendered into the
    message, so a failure deep in a change stream is reproducible from
    its string form alone:

    * ``term``  -- the program (or subterm) being run;
    * ``step``  -- the 0-based step number of the failing reaction;
    * ``change``-- the offending change (or tuple of changes);
    * ``cause`` -- the underlying exception, also chained via
      ``raise … from``.
    """

    def __init__(
        self,
        message: str = "",
        *args: Any,
        term: Any = None,
        step: Optional[int] = None,
        change: Any = None,
        cause: Optional[BaseException] = None,
        **details: Any,
    ):
        super().__init__(message, *args)
        self.message = message
        self.term = term
        self.step = step
        self.change = change
        self.cause = cause
        self.details = details

    def _context_suffix(self) -> str:
        parts = []
        if self.step is not None:
            parts.append(f"step={self.step}")
        if self.term is not None:
            parts.append(f"term={_shorten(self._pretty_term())!r}")
        if self.change is not None:
            parts.append(f"change={_shorten(repr(self.change))}")
        for key, value in self.details.items():
            parts.append(f"{key}={_shorten(repr(value))}")
        if self.cause is not None:
            parts.append(f"cause={type(self.cause).__name__}: {self.cause}")
        return f" [{', '.join(parts)}]" if parts else ""

    def _pretty_term(self) -> str:
        try:
            from repro.lang.pretty import pretty
            from repro.lang.terms import Term

            if isinstance(self.term, Term):
                return pretty(self.term)
        except Exception:  # pragma: no cover - pretty-printing is best-effort
            pass
        return repr(self.term)

    def __str__(self) -> str:
        return f"{self.message}{self._context_suffix()}"


class InvalidChangeError(ReproError, TypeError):
    """A change is not a valid member of ``Δv`` for the value it targets.

    Raised by the runtime ⊕/compose layer when a change's shape does not
    fit the value (wrong group carrier, wrong tuple arity, alien object),
    and by the resilience layer's pre-step validation.  Also a
    ``TypeError`` so legacy call sites catching the historical exception
    keep working.
    """


class DerivativeError(ReproError):
    """A derivative raised while reacting to a change.

    The paper assumes derivatives are total; a partial primitive or a
    buggy plugin derivative breaks that assumption at runtime.  The
    engine guarantees the failed step rolled back, so the program is
    still resumable (and ``rebase`` can fall back to recomputation).
    """


class DriftError(ReproError):
    """Incremental output diverged from from-scratch recomputation.

    Eq. 1 failed observably: either a derivative returned a wrong (but
    well-formed) change, or an invalid change slipped past validation.
    ``expected``/``actual`` carry both sides of the divergence.
    """

    def __init__(
        self,
        message: str = "",
        *args: Any,
        expected: Any = None,
        actual: Any = None,
        **kwargs: Any,
    ):
        super().__init__(
            message, *args, expected=expected, actual=actual, **kwargs
        )
        self.expected = expected
        self.actual = actual


class PluginContractError(ReproError):
    """A plugin violated its Sec. 3.7 contract.

    Raised when conformance checking (``repro.plugins.validation``) finds
    Eq. (1) counterexamples or Def. 2.1 law violations; the issues ride
    along in ``details['issues']``.
    """


class PersistenceError(ReproError):
    """Base class of durable-state failures (``repro.persistence``).

    The subtree mirrors the storage stack::

        PersistenceError
        ├── CodecError     a serialized value/change is malformed, has a
        │                  bad checksum, or names an unknown group
        ├── JournalError   the write-ahead change log cannot be written
        │                  or is structurally invalid beyond tail repair
        ├── SnapshotError  a checkpoint file or the manifest is corrupt
        └── RecoveryError  no snapshot/journal combination reaches a
                           verifiable state (every ladder rung failed)
    """


class CodecError(PersistenceError, ValueError):
    """A serialized payload cannot be decoded (or a value cannot be
    canonically encoded).  Also a ``ValueError`` so generic CLI handlers
    keep working."""


class JournalError(PersistenceError, OSError):
    """The write-ahead journal is unusable (beyond torn-tail repair)."""


class SnapshotError(PersistenceError):
    """A checkpoint or its manifest failed validation."""


class RecoveryError(PersistenceError):
    """Crash recovery exhausted its ladder without reaching a state that
    passes replay and verification.  ``details['attempts']`` carries the
    per-rung failure reasons."""


__all__ = [
    "CodecError",
    "DerivativeError",
    "DriftError",
    "InvalidChangeError",
    "JournalError",
    "PersistenceError",
    "PluginContractError",
    "RecoveryError",
    "ReproError",
    "SnapshotError",
]
