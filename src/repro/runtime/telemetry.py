"""The metrics middleware layer: whole-stack timing and error counts.

The engines already instrument their *internals* (derivative vs ⊕
phases, cache bindings, journal fsync).  What no wrapper measured was
the stack as a client sees it: how long a step takes end-to-end through
validation + journaling + the engine, and how often the stack raises.
:class:`MetricsLayer` sits outermost (highest rank) and records exactly
that boundary:

* ``stack.step.wall_time_s`` -- end-to-end step latency histogram
  (quantiles come free via the P² sketch);
* ``stack.steps`` / ``stack.batches`` / ``stack.batch_rows`` --
  throughput counters;
* ``stack.errors`` -- raises escaping the stack, labelled per error
  type as ``stack.errors.<TypeName>``.

All recording is gated on the observability fast-path flag, so a
disabled hub costs one attribute check per step.
"""

from __future__ import annotations

import time
from typing import Any, Sequence

from repro.observability import get_observability
from repro.observability import metrics as _metrics
from repro.runtime.middleware import Middleware

_STATE = _metrics.STATE


class MetricsLayer(Middleware):
    """Outermost layer timing every stack operation."""

    layer_name = "metrics"
    rank = 40

    def __init__(self, inner: Any, prefix: str = "stack"):
        super().__init__(inner)
        self.prefix = prefix

    def _record(self, began: float) -> None:
        metrics = get_observability().metrics
        metrics.histogram(f"{self.prefix}.step.wall_time_s").record(
            time.perf_counter() - began
        )
        metrics.counter(f"{self.prefix}.steps").inc()

    def _record_error(self, error: BaseException) -> None:
        metrics = get_observability().metrics
        metrics.counter(f"{self.prefix}.errors").inc()
        metrics.counter(f"{self.prefix}.errors.{type(error).__name__}").inc()

    def initialize(self, *inputs: Any) -> Any:
        if not _STATE.on:
            return self.inner.initialize(*inputs)
        began = time.perf_counter()
        output = self.inner.initialize(*inputs)
        get_observability().metrics.histogram(
            f"{self.prefix}.initialize.wall_time_s"
        ).record(time.perf_counter() - began)
        return output

    def step(self, *changes: Any) -> Any:
        if not _STATE.on:
            return self.inner.step(*changes)
        began = time.perf_counter()
        try:
            output = self.inner.step(*changes)
        except Exception as error:
            self._record_error(error)
            raise
        self._record(began)
        return output

    def _delegate_batch(self, rows: Any, coalesce: bool) -> Any:
        if hasattr(self.inner, "step_batch"):
            return self.inner.step_batch(rows, coalesce=coalesce)
        output = self.output
        for row in rows:
            output = self.inner.step(*row)
        return output

    def step_batch(
        self, batch: Sequence[Sequence[Any]], coalesce: bool = True
    ) -> Any:
        # One boundary sample per burst (matching how a serving layer
        # experiences it), not one per absorbed row.
        rows = [tuple(row) for row in batch]
        if not rows:
            return self.output
        if not _STATE.on:
            return self._delegate_batch(rows, coalesce)
        began = time.perf_counter()
        try:
            output = self._delegate_batch(rows, coalesce)
        except Exception as error:
            self._record_error(error)
            raise
        metrics = get_observability().metrics
        metrics.histogram(f"{self.prefix}.step.wall_time_s").record(
            time.perf_counter() - began
        )
        metrics.counter(f"{self.prefix}.batches").inc()
        metrics.counter(f"{self.prefix}.batch_rows").inc(len(rows))
        return output

    def layer_state(self) -> Any:
        return {"prefix": self.prefix}


__all__ = ["MetricsLayer"]
