"""The engine-middleware protocol: one wrapper contract, many layers.

Historically the repo grew four ad-hoc engine wrappers -- caching (an
engine variant), ``ResilientProgram``, ``DurableProgram``, and the
observability instrumentation baked into each -- and none of them knew
about the others.  Stacking them worked only in the one nesting order
``run_trace`` happened to use, and every wrapper re-implemented the
same delegation boilerplate.

:class:`Middleware` is the single contract they all share now.  A layer
wraps an ``inner`` program (an engine or another layer) and may
interpose on the lifecycle hooks:

``initialize(*inputs)``
    runs once, before any step;
``step(*changes)``
    one transactional change application;
``step_batch(rows, coalesce=True)``
    a burst of rows.  The default implementation preserves the
    change-batch fusion of ``f a ⊕ df a (da₁ ∘ da₂)``: a layer that
    interposes on ``step`` gets the burst composed *first* (when the
    change algebra supports it) and then routed through its own
    ``step`` -- so validation, journaling, and fallback all see the
    coalesced change exactly once.  A layer that does not interpose on
    ``step`` delegates the whole batch untouched;
``recompute() / rebase(*changes) / resync() / verify()``
    the from-scratch escape hatches (always correct, per the paper's
    erasure theorem -- a derivative may degenerate to recomputation);
``snapshot_state()``
    a JSON-ready description of the layer's own observable state
    (counters, policy), recursing into ``inner`` -- the health probe
    and ``describe_stack`` feed.

Everything else (``output``, ``steps``, ``arity``, ``registry``, ...)
delegates transparently, so a stack of N layers quacks exactly like the
bare engine at its bottom.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ReproError


class StackError(ReproError, ValueError):
    """A middleware stack specification is invalid."""


def engine_of(program: Any) -> Any:
    """The bare engine at the bottom of a (possibly multi-layer) stack.

    Walks ``inner``/``program`` links until neither exists.  Replaces
    the old one-level ``_engine_of`` in ``persistence.durable``, which
    silently returned an intermediate layer for stacks deeper than two.
    """
    seen = set()
    current = program
    while id(current) not in seen:
        seen.add(id(current))
        nxt = getattr(current, "inner", None)
        if nxt is None:
            nxt = getattr(current, "program", None)
        if nxt is None or nxt is current:
            break
        current = nxt
    return current


def iter_layers(program: Any) -> Iterator[Any]:
    """All layers outermost-first, ending with the bare engine."""
    seen = set()
    current = program
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        yield current
        nxt = getattr(current, "inner", None)
        if nxt is None:
            nxt = getattr(current, "program", None)
        if nxt is current:
            break
        current = nxt


class Middleware:
    """Base class for stackable engine layers (transparent delegation)."""

    #: Registry key; subclasses override (``"metrics"``, ``"durable"``, ...).
    layer_name: str = "middleware"
    #: Canonical stack position -- outermost layers have a higher rank.
    #: ``validate_spec`` enforces strictly decreasing ranks outermost→in.
    rank: int = 0

    def __init__(self, inner: Any):
        self.inner = inner

    # -- historical aliases --------------------------------------------------

    @property
    def program(self) -> Any:
        """The wrapped program (pre-stack wrappers called it ``.program``)."""
        return self.inner

    @property
    def engine(self) -> Any:
        """The bare engine at the bottom of the stack."""
        return engine_of(self.inner)

    # -- lifecycle hooks -----------------------------------------------------

    def initialize(self, *inputs: Any) -> Any:
        return self.inner.initialize(*inputs)

    def step(self, *changes: Any) -> Any:
        return self.inner.step(*changes)

    def step_batch(
        self, batch: Sequence[Sequence[Any]], coalesce: bool = True
    ) -> Any:
        rows: List[Tuple[Any, ...]] = [tuple(row) for row in batch]
        if not rows:
            return self.output
        interposes = type(self).step is not Middleware.step
        if not interposes and hasattr(self.inner, "step_batch"):
            return self.inner.step_batch(rows, coalesce=coalesce)
        if interposes and coalesce and len(rows) > 1:
            # Coalesce *above* this layer's step so its interposition
            # (journal append, validation, fallback) happens once per
            # burst -- the same fusion the engines do internally.
            from repro.incremental.engine import compose_change_rows

            composed = compose_change_rows(rows)
            if composed is not None:
                return self.step(*composed)
        output = self.output
        for row in rows:
            output = self.step(*row)
        return output

    def recompute(self) -> Any:
        return self.inner.recompute()

    def rebase(self, *changes: Any) -> Any:
        return self.inner.rebase(*changes)

    def resync(self) -> Any:
        return self.inner.resync()

    def verify(self) -> bool:
        return self.inner.verify()

    def fast_forward(self, steps: int) -> None:
        self.inner.fast_forward(steps)

    def current_inputs(self) -> Sequence[Any]:
        return self.inner.current_inputs()

    # -- snapshot-state hook -------------------------------------------------

    def layer_state(self) -> Any:
        """This layer's own observable state (override in subclasses)."""
        return {}

    def snapshot_state(self) -> Any:
        """JSON-ready state of the whole stack, outermost-first."""
        state = {"layer": self.layer_name}
        own = self.layer_state()
        if own:
            state.update(own)
        inner_snapshot = getattr(self.inner, "snapshot_state", None)
        if inner_snapshot is not None:
            state["inner"] = inner_snapshot()
        else:
            state["inner"] = {
                "layer": "engine",
                "kind": type(self.inner).__name__,
                "steps": getattr(self.inner, "steps", None),
                "backend": getattr(self.inner, "backend", None),
            }
        return state

    # -- transparent delegation ----------------------------------------------

    @property
    def output(self) -> Any:
        return self.inner.output

    @property
    def steps(self) -> int:
        return self.inner.steps

    @property
    def arity(self) -> int:
        return self.inner.arity

    @property
    def registry(self) -> Any:
        return self.inner.registry

    @property
    def program_type(self) -> Any:
        return getattr(self.inner, "program_type", None)

    @property
    def term(self) -> Any:
        return getattr(self.inner, "term", None)

    @property
    def last_step_span(self) -> Optional[Any]:
        return getattr(self.engine, "last_step_span", None)

    def close(self) -> None:
        close = getattr(self.inner, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "Middleware":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


__all__ = ["Middleware", "StackError", "engine_of", "iter_layers"]
