"""The resilience middleware layer: Eq. 1's side conditions at runtime.

The correctness theorem (Eq. 1) holds under two side conditions the
runtime cannot take for granted: the incoming change must be *valid*
for the current input (``da ∈ Δa``), and the derivative must be *total*
on the changes it is fed.  :class:`ResilienceLayer` enforces both
operationally:

* **Change validation** -- before a step runs, each per-input change is
  checked against the input's type using the plugin conformance
  machinery (:func:`repro.plugins.validation.change_mismatch`).  A
  malformed change is rejected with :class:`~repro.errors.InvalidChangeError`
  *before* it can touch engine state.
* **Recompute fallback** -- when the derivative raises (it was assumed
  total but is not), the engine has already rolled the step back; the
  layer falls back to ``rebase`` -- apply the changes by ``⊕`` and
  recompute from scratch -- within a configurable budget.  The paper's
  own observation that ``Replace``-style derivatives degenerate to
  recomputation makes this fallback always-correct.  The triggering
  :class:`~repro.errors.DerivativeError` is **not swallowed**: it is
  kept as :attr:`ResilienceLayer.last_fallback_error` and attached as
  the ``cause`` attribute of the emitted ``resilience.fallback`` span,
  so post-mortems can see *why* the expensive path ran.
* **Drift detection** -- every ``verify_every`` steps the incremental
  output is compared against from-scratch recomputation (Eq. 1 checked
  *at runtime*).  Divergence either raises
  :class:`~repro.errors.DriftError` with both sides attached, or
  self-heals by adopting the recomputed output (``on_drift="heal"``).

The layer keeps counters (``fallbacks``, ``rejected_changes``,
``drift_detections``, ``heals``) as plain attributes and mirrors them
into the observability registry (``engine.fallbacks`` etc.) when
telemetry is enabled.  ``repro.incremental.resilient.ResilientProgram``
is a thin alias kept for old imports and journal init records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

from repro.errors import DerivativeError, DriftError, InvalidChangeError
from repro.lang.types import Type, uncurry_fun_type
from repro.observability import get_observability
from repro.observability import metrics as _metrics
from repro.runtime.middleware import Middleware

_STATE = _metrics.STATE


@dataclass
class ResiliencePolicy:
    """Tunable knobs of the resilience layer.

    validate_changes:
        Shape-check every per-input change against the input's type
        before stepping (cheap; does not force lazy inputs).
    deep_validate:
        Additionally check membership in ``Δv`` for the *current* input
        value (e.g. a negative delta on a ``Nat`` holding 2).  This
        forces the lazy inputs each step, trading self-maintainability
        for stronger guarantees -- off by default.
    fallback:
        On :class:`~repro.errors.DerivativeError`, fall back to
        ``rebase`` (apply changes by ``⊕``, recompute from scratch).
    max_fallbacks:
        Budget of fallbacks before a :class:`DerivativeError` is allowed
        to escape (None = unlimited).  A small budget turns a persistent
        derivative bug into a loud failure instead of silently paying
        from-scratch cost forever.
    verify_every:
        Check Eq. 1 (incremental output == recomputation) every N
        successful steps; 0 disables drift detection.
    on_drift:
        ``"raise"`` -- raise :class:`~repro.errors.DriftError`;
        ``"heal"`` -- adopt the recomputed output and continue.
    """

    validate_changes: bool = True
    deep_validate: bool = False
    fallback: bool = True
    max_fallbacks: Optional[int] = None
    verify_every: int = 0
    on_drift: str = "raise"

    def __post_init__(self) -> None:
        if self.on_drift not in ("raise", "heal"):
            raise ValueError(
                f"on_drift must be 'raise' or 'heal', got {self.on_drift!r}"
            )
        if self.verify_every < 0:
            raise ValueError("verify_every must be >= 0")


class ResilienceLayer(Middleware):
    """A middleware layer enforcing Eq. 1's side conditions at runtime."""

    layer_name = "resilient"
    rank = 20

    def __init__(
        self,
        program: Any,
        policy: Optional[ResiliencePolicy] = None,
        input_types: Optional[Sequence[Type]] = None,
    ):
        super().__init__(program)
        self.policy = policy or ResiliencePolicy()
        self.input_types: Optional[List[Type]] = (
            list(input_types)
            if input_types is not None
            else self._inferred_input_types()
        )
        #: Resilience counters (always maintained; mirrored into the
        #: observability registry when telemetry is on).
        self.fallbacks = 0
        self.rejected_changes = 0
        self.drift_detections = 0
        self.heals = 0
        #: The most recent DerivativeError that triggered a fallback --
        #: preserved (with its own ``cause`` chain) instead of swallowed.
        self.last_fallback_error: Optional[DerivativeError] = None
        self._steps_since_verify = 0

    def _inferred_input_types(self) -> Optional[List[Type]]:
        program_type = getattr(self.inner, "program_type", None)
        if program_type is None:
            return None
        arguments, _ = uncurry_fun_type(program_type)
        return list(arguments[: self.inner.arity])

    # -- lifecycle ---------------------------------------------------------

    def step(self, *changes: Any) -> Any:
        """A validated, fallback-protected, drift-checked step."""
        if self.policy.validate_changes:
            self._validate(changes)
        try:
            output = self.inner.step(*changes)
        except DerivativeError as error:
            if not self._may_fall_back():
                raise
            output = self._fall_back(error, changes)
        output = self._maybe_check_drift(output)
        return output

    def _fall_back(self, error: DerivativeError, changes: Sequence[Any]) -> Any:
        self.fallbacks += 1
        self.last_fallback_error = error
        if not _STATE.on:
            return self.inner.rebase(*changes)
        hub = get_observability()
        hub.metrics.counter("engine.fallbacks").inc()
        root = error.cause if error.cause is not None else error
        # The span wraps the rebase so its duration *is* the recompute
        # cost, and its attributes carry the triggering error chain.
        with hub.tracer.span(
            "resilience.fallback",
            step=self.inner.steps,
            error=type(error).__name__,
            cause=f"{type(root).__name__}: {root}",
        ):
            return self.inner.rebase(*changes)

    # -- change validation -------------------------------------------------

    def _validate(self, changes: Sequence[Any]) -> None:
        from repro.plugins.validation import change_mismatch

        if self.input_types is None:
            return
        deep = self.policy.deep_validate
        values = self.inner.current_inputs() if deep else None
        for index, (ty, change) in enumerate(zip(self.input_types, changes)):
            if deep:
                problem = change_mismatch(
                    ty, change, self.registry, value=values[index]
                )
            else:
                problem = change_mismatch(ty, change, self.registry)
            if problem is not None:
                self.rejected_changes += 1
                if _STATE.on:
                    get_observability().metrics.counter(
                        "engine.rejected_changes"
                    ).inc()
                raise InvalidChangeError(
                    f"rejected change for input {index}: {problem}",
                    term=getattr(self.inner, "term", None),
                    step=self.inner.steps,
                    change=change,
                    input_index=index,
                )

    # -- fallback ----------------------------------------------------------

    def _may_fall_back(self) -> bool:
        if not self.policy.fallback:
            return False
        budget = self.policy.max_fallbacks
        return budget is None or self.fallbacks < budget

    # -- drift detection ---------------------------------------------------

    def _maybe_check_drift(self, output: Any) -> Any:
        if not self.policy.verify_every:
            return output
        self._steps_since_verify += 1
        if self._steps_since_verify < self.policy.verify_every:
            return output
        self._steps_since_verify = 0
        expected = self.inner.recompute()
        if expected == output:
            return output
        self.drift_detections += 1
        if _STATE.on:
            get_observability().metrics.counter("engine.drift_detected").inc()
        if self.policy.on_drift == "heal":
            self.heals += 1
            if _STATE.on:
                get_observability().metrics.counter("engine.heals").inc()
            return self.inner.resync()
        raise DriftError(
            "incremental output diverged from recomputation",
            term=getattr(self.inner, "term", None),
            step=self.inner.steps - 1,
            expected=expected,
            actual=output,
        )

    # -- snapshot-state ----------------------------------------------------

    def layer_state(self) -> Any:
        last = self.last_fallback_error
        return {
            "fallbacks": self.fallbacks,
            "rejected_changes": self.rejected_changes,
            "drift_detections": self.drift_detections,
            "heals": self.heals,
            "last_fallback_cause": (
                f"{type(last).__name__}: {last}" if last is not None else None
            ),
        }


__all__ = ["ResilienceLayer", "ResiliencePolicy"]
