"""The chaos soak harness behind ``repro soak``.

One :func:`run_soak` call drives the *full* stack -- supervised runtime
over metrics + durable + resilient layers over the caching engine, a
composition that was impossible before the middleware refactor --
through alternating waves of hot-key-churn and fault-storm traffic,
interleaving SIGKILL crash/recover cycles of a journaled subprocess,
while tracking:

* **outcome accounting** -- every pushed row must land in exactly one
  supervisor outcome (incremental / recompute / rejected / stale /
  shed); the zero-unhandled-exceptions gate is literally ``pushed ==
  sum(outcomes)`` plus an empty ``unhandled`` list;
* **breaker/degradation transitions** -- both breakers' transition logs,
  written out as a JSON-lines artifact for CI;
* **memory growth** -- ``tracemalloc`` samples per wave, first→last
  growth and peak;
* **crash recovery** -- each cycle SIGKILLs a journaled ``repro trace``
  subprocess mid-run and runs the recovery ladder over the remains,
  requiring a verified report;
* **SLO feed** -- the soak's latency quantiles are shaped like a traffic
  cell (backend ``supervised``, profile ``soak``) and pushed through
  the same :func:`repro.observability.slo.evaluate_slo` gate as the
  bench cells.

Storm waves arm the profile's primitive faults
(:func:`repro.incremental.faults.inject_faults`) for exactly the storm
window and corrupt a fraction of rows, so the ladder's every rung gets
exercised: coalesced bursts while healthy, rejections for corrupt rows,
breaker-tripped recompute during storms, and half-open climbs back
after each storm passes.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.incremental.faults import inject_faults, parse_fault_spec
from repro.lang.types import uncurry_fun_type
from repro.observability import observing
from repro.observability.quantiles import QuantileSketch
from repro.runtime.breaker import BreakerPolicy
from repro.runtime.durability import DurabilityPolicy
from repro.runtime.stack import assemble_stack
from repro.runtime.supervisor import SupervisedRuntime, SupervisorPolicy
from repro.traffic.models import FaultStorm, HotKeyChurn, Steady, TrafficProfile

#: The program the crash-cycle subprocess runs (small and journal-friendly).
_CRASH_PROGRAM = r"\xs ys -> foldBag gplus id (merge xs ys)"


@dataclass
class SoakConfig:
    """Knobs of one soak run.

    ``minutes`` bounds the run by wall clock (None = run exactly
    ``waves`` waves).  ``--quick`` maps to the small values used by the
    CI smoke job (a couple of waves, one crash cycle, ~a minute).
    """

    minutes: Optional[float] = None
    waves: int = 4
    wave_steps: int = 24
    size: int = 400
    seed: int = 7
    workload: str = "histogram"
    engine: str = "caching"
    backend: str = "compiled"
    crash_cycles: int = 1
    fsync: str = "never"
    snapshot_every: int = 8
    directory: Optional[str] = None
    storm_corrupt_ratio: float = 0.4
    storm_faults: tuple = ("raise:foldBag'_gf",)
    deadline_s: Optional[float] = None
    slo_path: Optional[str] = None


def _soak_profiles(config: SoakConfig) -> List[TrafficProfile]:
    """The two alternating wave shapes: hot churn, then a fault storm."""
    churn = TrafficProfile(
        name="soak-churn",
        keys=HotKeyChurn(hot_count=3, hot_fraction=0.9, churn_every=8),
        arrival=Steady(rows_per_step=2),
        removal_ratio=0.2,
        description="hot-key churn between storms",
    )
    storm = TrafficProfile(
        name="soak-storm",
        keys=HotKeyChurn(hot_count=2, hot_fraction=0.8, churn_every=8),
        arrival=Steady(rows_per_step=2),
        removal_ratio=0.2,
        storm=FaultStorm(
            start=2,
            length=max(4, config.wave_steps // 3),
            corrupt_ratio=config.storm_corrupt_ratio,
            primitive_faults=tuple(config.storm_faults),
        ),
        description="corrupting fault storm with sabotaged derivative",
    )
    return [churn, storm]


def _build_supervised(config: SoakConfig, state_dir: str) -> SupervisedRuntime:
    from repro.plugins.registry import standard_registry
    from repro.traffic.harness import TRAFFIC_WORKLOADS

    registry = standard_registry()
    term, inputs = TRAFFIC_WORKLOADS[config.workload](registry, config.size)
    stack = assemble_stack(
        term,
        registry,
        [
            "metrics",
            (
                "durable",
                {
                    "directory": state_dir,
                    "policy": DurabilityPolicy(
                        journal_fsync=config.fsync,
                        snapshot_every=config.snapshot_every,
                    ),
                },
            ),
            # Validation rejects corrupt rows at this layer; fallback is
            # off so derivative faults surface to the supervisor, whose
            # breaker + ladder own the recompute decision.
            ("resilient", {"policy": _no_fallback_policy()}),
        ],
        engine=config.engine,
        backend=config.backend,
    )
    supervised = SupervisedRuntime(
        stack,
        SupervisorPolicy(
            deadline_s=config.deadline_s,
            retries=1,
            derivative_breaker=BreakerPolicy(failure_threshold=3, cooldown=6),
            recompute_breaker=BreakerPolicy(failure_threshold=2, cooldown=4),
            seed=config.seed,
        ),
    )
    supervised.initialize(*inputs)
    return supervised


def _no_fallback_policy() -> Any:
    from repro.runtime.resilience import ResiliencePolicy

    return ResiliencePolicy(validate_changes=True, fallback=False)


def _input_types(supervised: SupervisedRuntime) -> List[Any]:
    engine = supervised.engine
    return list(uncurry_fun_type(engine.program_type)[0])[: engine.arity]


def crash_cycle(
    directory: str, steps: int = 40, seed: int = 13, timeout_s: float = 30.0
) -> Dict[str, Any]:
    """One SIGKILL crash/recover cycle: spawn a journaled ``repro trace``
    subprocess, kill it after a few committed steps, run the recovery
    ladder, and report what came back."""
    import repro
    from repro.persistence.journal import journal_path, read_journal
    from repro.persistence.recovery import recover
    from repro.plugins.registry import standard_registry

    src_root = os.path.dirname(os.path.dirname(repro.__file__))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "trace",
            _CRASH_PROGRAM,
            "--steps",
            str(steps),
            "--size",
            "30",
            "--seed",
            str(seed),
            "--journal",
            directory,
            "--snapshot-every",
            "2",
            "--fsync",
            "never",
            "--step-delay",
            "0.05",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    path = journal_path(directory)
    report: Dict[str, Any] = {"killed": False, "recovered": False}
    try:
        deadline = time.monotonic() + timeout_s
        steps_seen = 0
        while time.monotonic() < deadline:
            if process.poll() is not None:
                report["error"] = (
                    f"trace exited early (rc={process.returncode})"
                )
                return report
            if os.path.exists(path):
                steps_seen = sum(
                    1
                    for record in read_journal(path).records
                    if record.payload.get("type") == "step"
                )
                if steps_seen >= 4:
                    break
            time.sleep(0.02)
        else:
            report["error"] = "journal never reached 4 step records"
            return report
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=10)
        report["killed"] = True
        report["steps_at_kill"] = steps_seen
    finally:
        if process.poll() is None:  # pragma: no cover - cleanup
            process.kill()
            process.wait()
    result = recover(directory, registry=standard_registry())
    try:
        report["recovered"] = True
        report["recovered_steps"] = result.report.steps
        report["verified"] = bool(result.report.verified)
        report["rung"] = getattr(result.report, "rung", None)
    finally:
        result.program.close()
    return report


def run_soak(
    config: Optional[SoakConfig] = None,
    transitions_path: Optional[str] = None,
    report_path: Optional[str] = None,
) -> Dict[str, Any]:
    """Run the chaos soak; returns the JSON-ready report (``ok`` verdict
    included) and optionally writes the transition log + report files."""
    from repro.bench import run_stamp
    from repro.observability.slo import (
        DEFAULT_SLO_PATH,
        SloError,
        evaluate_slo,
        load_slo,
    )

    config = config or SoakConfig()
    began = time.monotonic()
    deadline = (
        began + config.minutes * 60.0 if config.minutes is not None else None
    )
    profiles = _soak_profiles(config)
    tracemalloc.start()
    unhandled: List[str] = []
    waves: List[Dict[str, Any]] = []
    crash_reports: List[Dict[str, Any]] = []
    memory_samples: List[Dict[str, int]] = []
    latency = QuantileSketch()
    latencies_s: List[float] = []
    pushed = 0
    reads = 0
    wall = 0.0

    state_root = config.directory or tempfile.mkdtemp(prefix="repro-soak-")
    state_dir = os.path.join(state_root, "state")
    with observing(reset=True):
        supervised = _build_supervised(config, state_dir)
        input_types = _input_types(supervised)
        crash_at = _crash_schedule(config)
        wave_index = 0
        while True:
            if deadline is not None and time.monotonic() >= deadline:
                break
            if deadline is None and wave_index >= config.waves:
                break
            profile = profiles[wave_index % len(profiles)]
            wave = _run_wave(
                supervised,
                profile,
                input_types,
                config,
                seed=config.seed + wave_index,
                latency=latency,
                latencies_s=latencies_s,
                unhandled=unhandled,
            )
            pushed += wave["pushed"]
            reads += wave["reads"]
            wall += wave["wall_s"]
            waves.append(wave)
            current, peak = tracemalloc.get_traced_memory()
            memory_samples.append({"wave": wave_index, "current": current, "peak": peak})
            if wave_index in crash_at:
                crash_dir = os.path.join(state_root, f"crash-{wave_index}")
                try:
                    crash_reports.append(crash_cycle(crash_dir))
                except Exception as error:  # pragma: no cover - harness guard
                    crash_reports.append(
                        {"recovered": False, "error": f"{type(error).__name__}: {error}"}
                    )
            wave_index += 1
        # Drain any admitted-but-unserved rows before accounting.
        supervised.drain()
        health = supervised.health()
        verified = _final_verify(supervised, unhandled)
        supervised.close()
    tracemalloc.stop()

    outcomes = health["outcomes"]
    accounted = sum(outcomes.values())
    memory = _memory_report(memory_samples)
    transitions = supervised.transitions
    slo_row = _slo_row(config, pushed, reads, wall, latency, latencies_s)
    slo_report: Optional[Dict[str, Any]] = None
    slo_error: Optional[str] = None
    try:
        policy = load_slo(config.slo_path or DEFAULT_SLO_PATH)
    except SloError as error:
        slo_error = str(error)
    else:
        slo_report = evaluate_slo(policy, [slo_row], trend=[])
    crashes_ok = all(
        report.get("recovered") and report.get("verified", True)
        for report in crash_reports
    )
    ok = (
        not unhandled
        and accounted == pushed
        and crashes_ok
        and verified
        and (slo_report is None or slo_report["ok"])
    )
    report = {
        "kind": "soak",
        **run_stamp(),
        "config": {
            "minutes": config.minutes,
            "waves": len(waves),
            "wave_steps": config.wave_steps,
            "size": config.size,
            "seed": config.seed,
            "workload": config.workload,
            "engine": config.engine,
            "backend": config.backend,
            "fsync": config.fsync,
            "crash_cycles": config.crash_cycles,
        },
        "wall_s": time.monotonic() - began,
        "pushed": pushed,
        "accounted": accounted,
        "reads": reads,
        "outcomes": outcomes,
        "unhandled": unhandled,
        "verified": verified,
        "health": health,
        "breakers": {
            "derivative": supervised.derivative_breaker.snapshot(),
            "recompute": supervised.recompute_breaker.snapshot(),
        },
        "transitions": transitions,
        "memory": memory,
        "crash_cycles": crash_reports,
        "cell": slo_row,
        "slo": slo_report,
        "slo_error": slo_error,
        "ok": ok,
    }
    if transitions_path:
        with open(transitions_path, "w", encoding="utf-8") as handle:
            for transition in transitions:
                handle.write(json.dumps(transition) + "\n")
    if report_path:
        with open(report_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, default=str)
    return report


def _crash_schedule(config: SoakConfig) -> set:
    """Which wave indices are followed by a crash/recover cycle: spread
    evenly across the configured wave count."""
    if config.crash_cycles <= 0:
        return set()
    total = max(config.waves, 1)
    cycles = min(config.crash_cycles, total)
    return {
        (index + 1) * total // (cycles + 1) for index in range(cycles)
    }


def _run_wave(
    supervised: SupervisedRuntime,
    profile: TrafficProfile,
    input_types: List[Any],
    config: SoakConfig,
    seed: int,
    latency: QuantileSketch,
    latencies_s: List[float],
    unhandled: List[str],
) -> Dict[str, Any]:
    """One wave: feed the profile's events through submit/drain, arming
    primitive faults for exactly the storm windows."""
    from repro.plugins.registry import standard_registry

    registry = supervised.engine.registry or standard_registry()
    faults = [parse_fault_spec(spec) for spec in profile.storm_faults()]
    pushed = reads = 0
    wall = 0.0
    outcome_totals: Dict[str, int] = {}
    events = list(profile.events(input_types, config.wave_steps, seed))
    for event in events:
        began = time.perf_counter()
        try:
            armed = event.storm and faults
            if armed:
                with inject_faults(registry, *faults):
                    outcomes = _serve_event(supervised, event)
            else:
                outcomes = _serve_event(supervised, event)
            for outcome in outcomes:
                outcome_totals[outcome] = outcome_totals.get(outcome, 0) + 1
            for _ in range(event.reads):
                _ = supervised.output
        except Exception as error:
            # The whole point of the ladder is that this never happens.
            unhandled.append(
                f"wave={profile.name} step={event.step} "
                f"{type(error).__name__}: {error}"
            )
        elapsed = time.perf_counter() - began
        latency.record(elapsed)
        latencies_s.append(elapsed)
        wall += elapsed
        pushed += len(event.rows)
        reads += event.reads
    return {
        "profile": profile.name,
        "steps": len(events),
        "pushed": pushed,
        "reads": reads,
        "outcomes": outcome_totals,
        "wall_s": wall,
        "storm": profile.storm is not None,
    }


def _serve_event(supervised: SupervisedRuntime, event: Any) -> List[str]:
    """Admission-control path: submit each row, then drain the queue.
    Refused rows are already counted as shed by the supervisor."""
    outcomes: List[str] = []
    for row in event.rows:
        if not supervised.submit(*row):
            outcomes.append("shed")
    outcomes.extend(supervised.drain())
    return outcomes


def _final_verify(supervised: SupervisedRuntime, unhandled: List[str]) -> bool:
    """After the last wave (faults cleared), the stack must be healthy
    enough to verify Eq. 1 -- unless it is still legitimately stale."""
    if not supervised.ready():
        return True  # stale-serving is an *accounted* state, not a failure
    try:
        return bool(supervised.verify())
    except Exception as error:  # pragma: no cover - verification guard
        unhandled.append(f"final-verify {type(error).__name__}: {error}")
        return False


def _memory_report(samples: List[Dict[str, int]]) -> Dict[str, Any]:
    if not samples:
        return {"samples": 0}
    first = samples[0]["current"]
    last = samples[-1]["current"]
    return {
        "samples": len(samples),
        "first_bytes": first,
        "last_bytes": last,
        "growth_bytes": last - first,
        "peak_bytes": max(sample["peak"] for sample in samples),
        "per_wave": samples,
    }


def _slo_row(
    config: SoakConfig,
    pushed: int,
    reads: int,
    wall: float,
    latency: QuantileSketch,
    latencies_s: List[float],
) -> Dict[str, Any]:
    """The soak shaped as a traffic cell so the stock SLO gate applies."""
    from repro.observability import get_observability

    def ms(value: Optional[float]) -> Optional[float]:
        return value * 1e3 if value is not None else None

    journal = get_observability().metrics.histogram(
        "persistence.journal.append_wall_time_s"
    )
    phases: Dict[str, Any] = {}
    if journal.count:
        phases["journal"] = {
            "count": journal.count,
            "mean_ms": ms(journal.mean),
            "p50_ms": ms(journal.quantile(0.5)),
            "p99_ms": ms(journal.quantile(0.99)),
        }
    return {
        "workload": config.workload,
        "backend": "supervised",
        "profile": "soak",
        "n": config.size,
        "seed": config.seed,
        "steps": len(latencies_s),
        "changes": pushed,
        "reads": reads,
        "wall_s": wall,
        "changes_per_s": pushed / wall if wall > 0 else None,
        "latency_ms": {
            "mean": ms(wall / len(latencies_s)) if latencies_s else None,
            "max": ms(max(latencies_s)) if latencies_s else None,
            "p50": ms(latency.quantile(0.5)),
            "p90": ms(latency.quantile(0.9)),
            "p99": ms(latency.quantile(0.99)),
            "p999": ms(latency.quantile(0.999)),
        },
        "phases_ms": phases,
        "latency_history_ms": [value * 1e3 for value in latencies_s[-64:]],
    }


__all__ = ["SoakConfig", "crash_cycle", "run_soak"]
