"""The supervised runtime: a degradation ladder over a middleware stack.

The paper guarantees ``f (a ⊕ da) = f a ⊕ df a da`` *when the side
conditions hold*; :class:`SupervisedRuntime` is the control loop for
when they intermittently do not.  It owns a middleware stack (or bare
engine) and serves every submitted change through an explicit ladder:

1. **coalesced batch** -- the whole burst through ``step_batch`` with
   change-batch fusion (the fast path);
2. **per-row transactional** -- each row through ``step`` with bounded
   retries + exponential backoff + seeded jitter for transient
   derivative faults;
3. **full recompute** -- ``rebase`` the row (⊕ then recompute), always
   correct by the erasure theorem;
4. **stale-serve** -- when even recompute fails, the row is parked on a
   bounded stale backlog, the previous output keeps being served, and a
   staleness counter ticks until the recompute path heals.

Two deterministic circuit breakers decide which rung is reachable: the
*derivative* breaker trips after consecutive incremental failures (or
per-step deadline misses) and routes traffic straight to recompute; the
*recompute* breaker trips when even that fails and flips the runtime to
stale-serve.  Both climb back via half-open probes; when the recompute
breaker closes, the stale backlog is replayed in order before new work.

Admission control is a bounded pending queue: ``submit`` refuses work
beyond ``max_pending`` and counts the shed rows -- backpressure is a
number, not an exception storm.  Outcome accounting is total: every row
ever submitted lands in exactly one of ``applied_incremental``,
``applied_recompute``, ``rejected`` (invalid change), ``stale_served``,
or ``shed`` -- the soak harness's zero-unhandled-exceptions gate sums
these against the rows it pushed.

``health()`` / ``ready()`` expose the whole picture (breaker states,
counters, staleness) as the ``repro health`` probe payload.
"""

from __future__ import annotations

import random
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    CodecError,
    DerivativeError,
    InvalidChangeError,
    ReproError,
)

#: Errors that indict the *change*, not the serving path: a malformed
#: change (validation or ⊕ refused it) or one the codec cannot even
#: represent.  These reject-with-count instead of tripping breakers.
_CHANGE_FAULTS = (InvalidChangeError, CodecError)
from repro.observability import get_observability
from repro.observability import metrics as _metrics
from repro.runtime.breaker import BreakerPolicy, CircuitBreaker
from repro.runtime.middleware import engine_of
from repro.runtime.stack import describe_stack

_STATE = _metrics.STATE

#: Outcome labels, in ladder order.
INCREMENTAL = "incremental"
RECOMPUTE = "recompute"
REJECTED = "rejected"
STALE = "stale"
SHED = "shed"


@dataclass
class SupervisorPolicy:
    """Tunable knobs of the supervised runtime.

    deadline_s:
        Soft per-step deadline; an incremental step that exceeds it
        counts as a derivative-path failure for the breaker (the step's
        result is still used -- the deadline shapes future routing, it
        does not abort work already done).  None disables.
    retries:
        Extra attempts per row on a transient
        :class:`~repro.errors.DerivativeError` before descending a rung.
    backoff_base_s / backoff_factor / backoff_jitter / max_backoff_s:
        Exponential backoff between retries: ``base * factor**attempt``,
        multiplied by ``1 ± jitter`` (seeded), capped at ``max_backoff_s``.
        The default base of 0 keeps tests and soaks fast while still
        exercising the retry loop.
    derivative_breaker / recompute_breaker:
        Policies of the two circuit breakers.
    max_pending:
        Admission-control bound on the pending queue (``submit``).
    max_stale_backlog:
        Bound on rows parked while stale-serving; overflow is shed.
    seed:
        Seeds the jitter RNG -- supervised runs are reproducible.
    """

    deadline_s: Optional[float] = None
    retries: int = 1
    backoff_base_s: float = 0.0
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.5
    max_backoff_s: float = 1.0
    derivative_breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    recompute_breaker: BreakerPolicy = field(
        default_factory=lambda: BreakerPolicy(failure_threshold=2, cooldown=4)
    )
    max_pending: int = 1024
    max_stale_backlog: int = 4096
    seed: int = 7

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.max_stale_backlog < 0:
            raise ValueError("max_stale_backlog must be >= 0")


class SupervisedRuntime:
    """The degradation-ladder control loop over a middleware stack."""

    def __init__(self, program: Any, policy: Optional[SupervisorPolicy] = None):
        self.program = program
        self.policy = policy or SupervisorPolicy()
        self.derivative_breaker = CircuitBreaker(
            "derivative", self.policy.derivative_breaker
        )
        self.recompute_breaker = CircuitBreaker(
            "recompute", self.policy.recompute_breaker
        )
        self._rng = random.Random(self.policy.seed)
        self._pending: Deque[Tuple[Any, ...]] = deque()
        self._stale_backlog: Deque[Tuple[Any, ...]] = deque()
        self._initialized = False
        #: Outcome counters -- every submitted row lands in exactly one.
        self.applied_incremental = 0
        self.applied_recompute = 0
        self.rejected_changes = 0
        self.stale_served = 0
        self.shed = 0
        #: Supporting counters.
        self.retries = 0
        self.deadline_misses = 0
        self.coalesced_rows = 0
        self.staleness = 0
        #: The most recent error per ladder rung (post-mortem context).
        self.last_errors: Dict[str, Optional[str]] = {
            "incremental": None,
            "recompute": None,
        }

    # -- lifecycle ---------------------------------------------------------

    def initialize(self, *inputs: Any) -> Any:
        output = self.program.initialize(*inputs)
        self._initialized = True
        return output

    @property
    def output(self) -> Any:
        return self.program.output

    @property
    def steps(self) -> int:
        return self.program.steps

    @property
    def engine(self) -> Any:
        return engine_of(self.program)

    def close(self) -> None:
        close = getattr(self.program, "close", None)
        if close is not None:
            close()

    # -- admission control -------------------------------------------------

    def submit(self, *changes: Any) -> bool:
        """Enqueue one change row; False (and a shed count) when full."""
        if len(self._pending) >= self.policy.max_pending:
            self.shed += 1
            if _STATE.on:
                get_observability().metrics.counter("supervisor.shed").inc()
            return False
        self._pending.append(tuple(changes))
        return True

    @property
    def pending(self) -> int:
        return len(self._pending)

    def drain(self) -> List[str]:
        """Serve everything admitted so far; returns per-row outcomes."""
        rows = list(self._pending)
        self._pending.clear()
        return self.apply_rows(rows)

    # -- the public step API (program-shaped) ------------------------------

    def step(self, *changes: Any) -> Any:
        self.apply_rows([tuple(changes)])
        return self.program.output

    def step_batch(
        self, batch: Sequence[Sequence[Any]], coalesce: bool = True
    ) -> Any:
        self.apply_rows([tuple(row) for row in batch], coalesce=coalesce)
        return self.program.output

    # -- the ladder --------------------------------------------------------

    def apply_rows(
        self, rows: Sequence[Tuple[Any, ...]], coalesce: bool = True
    ) -> List[str]:
        """Serve ``rows`` through the degradation ladder.

        Never raises for change-induced failures: every row's fate is an
        outcome label (``incremental``/``recompute``/``rejected``/
        ``stale``/``shed``), and the matching counter is bumped.
        """
        if not self._initialized:
            raise RuntimeError("call initialize() before applying changes")
        rows = [tuple(row) for row in rows]
        if not rows:
            return []
        # Heal check first: a closed recompute breaker with a backlog
        # means we just climbed back -- replay before new work.
        if self._stale_backlog and self._recompute_allowed():
            self._replay_backlog()
        if self._stale_backlog:
            # Still stale: park the new rows behind the backlog (order
            # preserved), bounded by the backlog budget.
            return [self._serve_stale(row) for row in rows]
        outcomes: List[str] = []
        # Rung 1: the coalesced batch, only while the derivative path
        # is trusted and the whole burst is storm-free enough to try.
        if coalesce and len(rows) > 1 and self.derivative_breaker.closed:
            served = self._try_batch(rows)
            if served == len(rows):
                self.coalesced_rows += len(rows)
                return [INCREMENTAL] * len(rows)
            # A poisoned batch may have committed a prefix of rows (the
            # engine's per-row fallback is transactional *per step*, not
            # per burst): count those exactly once and re-route only the
            # remainder, or rows would be applied twice.
            outcomes.extend([INCREMENTAL] * served)
            rows = rows[served:]
        for row in rows:
            outcomes.append(self._apply_row(row))
        return outcomes

    def _try_batch(self, rows: List[Tuple[Any, ...]]) -> int:
        """Serve the burst through ``step_batch``; returns how many
        leading rows actually committed (all of them on success)."""
        began = time.perf_counter()
        steps_before = self.program.steps
        try:
            self.program.step_batch(rows, coalesce=True)
        except Exception:
            # The batch is poisoned somewhere; fall to per-row, which
            # attributes the failure (and any breaker signal) to the
            # specific offending row.  An exception means the coalesced
            # single-step path did not commit, so any step-count delta
            # is exactly the number of leading rows the per-row fallback
            # committed before failing.
            committed = self.program.steps - steps_before
            if committed:
                self.applied_incremental += committed
                self.derivative_breaker.record_success()
            return committed
        self._note_deadline(began)
        self.applied_incremental += len(rows)
        self.derivative_breaker.record_success()
        return len(rows)

    def _apply_row(self, row: Tuple[Any, ...]) -> str:
        # Rung 2: per-row transactional step with retries.
        if self.derivative_breaker.allow():
            attempts = 1 + self.policy.retries
            for attempt in range(attempts):
                began = time.perf_counter()
                try:
                    self.program.step(*row)
                except _CHANGE_FAULTS:
                    # A malformed change is the *change's* fault, not the
                    # derivative path's: reject, no breaker signal.
                    self.rejected_changes += 1
                    if _STATE.on:
                        get_observability().metrics.counter(
                            "supervisor.rejected"
                        ).inc()
                    return REJECTED
                except DerivativeError as error:
                    self.last_errors["incremental"] = (
                        f"{type(error).__name__}: {error}"
                    )
                    if attempt + 1 < attempts:
                        self.retries += 1
                        self._backoff(attempt)
                        continue
                    self.derivative_breaker.record_failure(
                        type(error).__name__
                    )
                    break
                except Exception as error:
                    # Engine steps are transactional even for raw
                    # exceptions, so anything else is still just a
                    # derivative-path failure to route around -- the
                    # supervisor's no-throw contract holds regardless of
                    # how the path broke.
                    self.last_errors["incremental"] = (
                        f"{type(error).__name__}: {error}"
                    )
                    self.derivative_breaker.record_failure(
                        type(error).__name__
                    )
                    break
                else:
                    if self._note_deadline(began):
                        # Deadline miss: result kept, breaker informed.
                        self.derivative_breaker.record_failure("deadline")
                    else:
                        self.derivative_breaker.record_success()
                    self.applied_incremental += 1
                    return INCREMENTAL
        # Rung 3: full recompute via rebase.
        if self._recompute_allowed():
            try:
                self.program.rebase(*row)
            except _CHANGE_FAULTS:
                # ⊕ itself refused the change: the *change* is bad, not
                # the recompute path -- reject without breaker signal.
                self.rejected_changes += 1
                if _STATE.on:
                    get_observability().metrics.counter(
                        "supervisor.rejected"
                    ).inc()
                return REJECTED
            except Exception as error:
                # ``rebase`` rolls back on any exception, so a raw
                # failure (e.g. a sabotaged base primitive blowing up
                # mid-recomputation) degrades to stale-serve instead of
                # escaping the ladder.
                self.last_errors["recompute"] = (
                    f"{type(error).__name__}: {error}"
                )
                self.recompute_breaker.record_failure(type(error).__name__)
            else:
                self.recompute_breaker.record_success()
                self.applied_recompute += 1
                if _STATE.on:
                    get_observability().metrics.counter(
                        "supervisor.recompute"
                    ).inc()
                return RECOMPUTE
        # Rung 4: stale-serve.
        return self._serve_stale(row)

    def _recompute_allowed(self) -> bool:
        return self.recompute_breaker.allow()

    def _serve_stale(self, row: Tuple[Any, ...]) -> str:
        if len(self._stale_backlog) >= self.policy.max_stale_backlog:
            self.shed += 1
            if _STATE.on:
                get_observability().metrics.counter("supervisor.shed").inc()
            return SHED
        self._stale_backlog.append(row)
        self.stale_served += 1
        self.staleness = len(self._stale_backlog)
        if _STATE.on:
            metrics = get_observability().metrics
            metrics.counter("supervisor.stale_served").inc()
            metrics.gauge("supervisor.staleness").set(self.staleness)
        return STALE

    def _replay_backlog(self) -> None:
        """Climb back: replay parked rows in order through the ladder's
        recompute rung (the derivative path re-earns trust separately)."""
        while self._stale_backlog:
            row = self._stale_backlog[0]
            try:
                self.program.rebase(*row)
            except _CHANGE_FAULTS as error:
                # The parked row itself is malformed (it was admitted
                # while the recompute path was down, so rung 3 never got
                # to vet it): drop it rather than let one poison row
                # wedge the backlog in permanent staleness.  It stays
                # accounted as stale-served -- that was its outcome.
                self.last_errors["recompute"] = (
                    f"{type(error).__name__}: {error}"
                )
                self._stale_backlog.popleft()
                continue
            except Exception as error:
                self.last_errors["recompute"] = (
                    f"{type(error).__name__}: {error}"
                )
                self.recompute_breaker.record_failure(type(error).__name__)
                break
            self._stale_backlog.popleft()
            self.recompute_breaker.record_success()
            # The row was stale-served at admission time; replay repairs
            # state but does not re-count the row as a second outcome.
        self.staleness = len(self._stale_backlog)
        if _STATE.on:
            get_observability().metrics.gauge("supervisor.staleness").set(
                self.staleness
            )

    def _note_deadline(self, began: float) -> bool:
        deadline = self.policy.deadline_s
        if deadline is None:
            return False
        if time.perf_counter() - began <= deadline:
            return False
        self.deadline_misses += 1
        if _STATE.on:
            get_observability().metrics.counter(
                "supervisor.deadline_misses"
            ).inc()
        return True

    def _backoff(self, attempt: int) -> None:
        base = self.policy.backoff_base_s
        if base <= 0:
            return
        delay = min(
            base * (self.policy.backoff_factor ** attempt),
            self.policy.max_backoff_s,
        )
        jitter = self.policy.backoff_jitter
        if jitter:
            delay *= 1.0 + jitter * (2.0 * self._rng.random() - 1.0)
        if delay > 0:
            time.sleep(delay)

    # -- health / readiness ------------------------------------------------

    @property
    def transitions(self) -> List[Dict[str, Any]]:
        """Both breakers' transition logs, merged in operation order."""
        merged = (
            self.derivative_breaker.transitions
            + self.recompute_breaker.transitions
        )
        return sorted(merged, key=lambda t: t["op"])

    def outcome_counts(self) -> Dict[str, int]:
        return {
            INCREMENTAL: self.applied_incremental,
            RECOMPUTE: self.applied_recompute,
            REJECTED: self.rejected_changes,
            STALE: self.stale_served,
            SHED: self.shed,
        }

    def health(self) -> Dict[str, Any]:
        """The JSON payload behind ``repro health``."""
        if not self.derivative_breaker.closed:
            status = "degraded"
        else:
            status = "ok"
        if self._stale_backlog or not self.recompute_breaker.closed:
            status = "stale"
        return {
            "status": status,
            "ready": self.ready(),
            "initialized": self._initialized,
            "steps": self.program.steps if self._initialized else 0,
            "pending": len(self._pending),
            "staleness": len(self._stale_backlog),
            "deadline_misses": self.deadline_misses,
            "retries": self.retries,
            "coalesced_rows": self.coalesced_rows,
            "outcomes": self.outcome_counts(),
            "breakers": {
                "derivative": self.derivative_breaker.snapshot(),
                "recompute": self.recompute_breaker.snapshot(),
            },
            "last_errors": dict(self.last_errors),
            "stack": describe_stack(self.program),
        }

    def ready(self) -> bool:
        """Readiness: initialized and not stuck serving stale output."""
        return self._initialized and not self._stale_backlog

    def verify(self) -> bool:
        return self.program.verify()


__all__ = [
    "INCREMENTAL",
    "RECOMPUTE",
    "REJECTED",
    "SHED",
    "STALE",
    "SupervisedRuntime",
    "SupervisorPolicy",
]
