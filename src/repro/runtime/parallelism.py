"""The parallel middleware layer: shard the engine beneath it.

``ParallelLayer`` sits between metrics (rank 40) and durable (rank 30)
in the canonical stack order.  Unlike the other layers it does not
interpose on a single engine's calls -- it *replaces* execution with a
:class:`~repro.parallel.sharded.ShardedIncrementalProgram` built from
the template stack below it at ``initialize`` time:

* the bare engine at the bottom supplies the program term, registry,
  backend, and engine kind (plain or caching) -- one shard engine is
  built per shard from that template;
* a ``durable`` layer below supplies the journal root and policy: the
  parallel layer partitions it into per-shard ``journal-<shard>/``
  directories (each an ordinary durable directory) tied together by the
  root's ``shards.json`` consistent-cut manifest, and the template's
  own journal is never created;
* a ``resilient`` layer below is rejected -- per-shard validation
  wrapping is future work, and silently dropping a requested guarantee
  would be worse than refusing.

The metrics layer above still times the full sharded cost, which is why
``parallel`` ranks below it.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.runtime.middleware import (
    Middleware,
    StackError,
    engine_of,
    iter_layers,
)


class ParallelLayer(Middleware):
    """Shard the inner engine across N workers and route changes."""

    layer_name = "parallel"
    rank = 35

    def __init__(
        self,
        program: Any,
        shards: int = 2,
        seed: int = 0,
        executor: str = "inprocess",
    ):
        super().__init__(program)
        if shards < 1:
            raise StackError(f"shards must be >= 1, got {shards}")
        self.shard_count = shards
        self.seed = seed
        self.executor = executor
        self.sharded: Optional[Any] = None
        for layer in iter_layers(self.inner):
            if getattr(layer, "layer_name", None) == "resilient":
                raise StackError(
                    "the parallel layer does not compose with a resilient "
                    "layer beneath it; put resilience above parallel or "
                    "drop one of the two"
                )

    # -- lifecycle ---------------------------------------------------------

    def initialize(self, *inputs: Any) -> Any:
        from repro.parallel.sharded import ShardedIncrementalProgram

        engine = engine_of(self.inner)
        durable = next(
            (
                layer
                for layer in iter_layers(self.inner)
                if getattr(layer, "layer_name", None) == "durable"
            ),
            None,
        )
        self.sharded = ShardedIncrementalProgram(
            engine.term,
            engine.registry,
            self.shard_count,
            seed=self.seed,
            backend=getattr(engine, "backend", "compiled"),
            strict=bool(getattr(engine, "strict", False)),
            engine=(
                "caching"
                if type(engine).__name__ == "CachingIncrementalProgram"
                else "incremental"
            ),
            executor=self.executor,
            durable_directory=durable.directory if durable else None,
            durability_policy=durable.policy if durable else None,
        )
        return self.sharded.initialize(*inputs)

    def _active(self) -> Any:
        if self.sharded is None:
            raise RuntimeError("call initialize() before stepping")
        return self.sharded

    def step(self, *changes: Any) -> Any:
        return self._active().step(*changes)

    def step_batch(
        self, batch: Sequence[Sequence[Any]], coalesce: bool = True
    ) -> Any:
        return self._active().step_batch(batch, coalesce=coalesce)

    def recompute(self) -> Any:
        return self._active().recompute()

    def rebase(self, *changes: Any) -> Any:
        return self._active().rebase(*changes)

    def resync(self) -> Any:
        return self._active().resync()

    def verify(self) -> bool:
        return self._active().verify()

    def fast_forward(self, steps: int) -> None:
        self._active().fast_forward(steps)

    def current_inputs(self) -> Sequence[Any]:
        return self._active().current_inputs()

    # -- delegation to the sharded front ------------------------------------

    @property
    def output(self) -> Any:
        return self._active().output

    @property
    def steps(self) -> int:
        return self.sharded.steps if self.sharded is not None else 0

    @property
    def last_step_span(self) -> Optional[Any]:
        if self.sharded is not None:
            return self.sharded.last_step_span
        return super().last_step_span

    def layer_state(self) -> Any:
        state = {
            "shards": self.shard_count,
            "seed": self.seed,
            "executor": self.executor,
        }
        if self.sharded is not None:
            state["routed_changes"] = self.sharded.routed_changes
            state["cut"] = self.sharded.shard_steps()
        return state

    def close(self) -> None:
        if self.sharded is not None:
            self.sharded.close()
        super().close()


__all__ = ["ParallelLayer"]
