"""A deterministic circuit breaker for the derivative and recompute paths.

The classic three-state machine, driven by *operation counts* rather
than wall-clock time so tests (and seeded soaks) are perfectly
reproducible:

* **closed** -- operations flow; ``failure_threshold`` *consecutive*
  failures trip the breaker;
* **open** -- operations are refused (``allow()`` is False); each
  refusal burns one unit of ``cooldown``, after which the breaker moves
  to half-open;
* **half-open** -- a limited number of probe operations are admitted;
  ``probe_successes`` consecutive probe successes close the breaker,
  any probe failure re-opens it (with a fresh cooldown).

Every transition is recorded as a JSON-ready dict in
:attr:`CircuitBreaker.transitions` -- the soak harness's transition log
and the dashboard's breaker drill-down both read it verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass
class BreakerPolicy:
    """Tunable knobs of a circuit breaker.

    failure_threshold:
        Consecutive failures (while closed) that trip the breaker.
    cooldown:
        Refused operations to sit out while open before probing.
    probe_successes:
        Consecutive half-open successes required to close again.
    """

    failure_threshold: int = 3
    cooldown: int = 8
    probe_successes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown < 1:
            raise ValueError("cooldown must be >= 1")
        if self.probe_successes < 1:
            raise ValueError("probe_successes must be >= 1")


@dataclass
class CircuitBreaker:
    """One breaker instance (e.g. around the derivative path)."""

    name: str = "derivative"
    policy: BreakerPolicy = field(default_factory=BreakerPolicy)
    state: str = CLOSED
    operations: int = 0
    failures: int = 0
    successes: int = 0
    transitions: List[Dict[str, Any]] = field(default_factory=list)
    _consecutive_failures: int = 0
    _cooldown_remaining: int = 0
    _probe_streak: int = 0

    def _move(self, to: str, reason: str) -> None:
        self.transitions.append(
            {
                "breaker": self.name,
                "from": self.state,
                "to": to,
                "reason": reason,
                "op": self.operations,
            }
        )
        self.state = to

    # -- the protocol ------------------------------------------------------

    def allow(self) -> bool:
        """May the guarded operation run now?  Burns cooldown while open."""
        self.operations += 1
        if self.state == OPEN:
            self._cooldown_remaining -= 1
            if self._cooldown_remaining <= 0:
                self._probe_streak = 0
                self._move(HALF_OPEN, "cooldown elapsed")
                return True
            return False
        return True

    def record_success(self) -> None:
        self.successes += 1
        self._consecutive_failures = 0
        if self.state == HALF_OPEN:
            self._probe_streak += 1
            if self._probe_streak >= self.policy.probe_successes:
                self._move(CLOSED, "probe succeeded")

    def record_failure(self, reason: str = "error") -> None:
        self.failures += 1
        if self.state == HALF_OPEN:
            self._cooldown_remaining = self.policy.cooldown
            self._move(OPEN, f"probe failed: {reason}")
            return
        self._consecutive_failures += 1
        if (
            self.state == CLOSED
            and self._consecutive_failures >= self.policy.failure_threshold
        ):
            self._cooldown_remaining = self.policy.cooldown
            self._move(OPEN, f"{self._consecutive_failures} consecutive: {reason}")

    # -- reporting ---------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self.state == CLOSED

    def snapshot(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "state": self.state,
            "operations": self.operations,
            "failures": self.failures,
            "successes": self.successes,
            "transitions": len(self.transitions),
        }


__all__ = ["BreakerPolicy", "CircuitBreaker", "CLOSED", "HALF_OPEN", "OPEN"]
