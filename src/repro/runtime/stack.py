"""Declarative middleware-stack assembly with ordering validation.

A serving layer assembles per-tenant pipelines from data, not code:

    program = build_stack(engine, ["metrics", "durable", "resilient"],
                          durable={"directory": "/var/lib/views/t1"})

A spec is a sequence of layers **outermost-first**; each entry is a
layer name, a ``(name, options)`` pair, a ``{"layer": name, ...opts}``
dict, or a :class:`LayerSpec`.  :func:`validate_spec` normalizes the
spec and enforces the stacking discipline:

* every layer name must be registered (``metrics``, ``durable``,
  ``resilient``);
* no layer may appear twice;
* layers must be listed in canonical order -- strictly decreasing
  :attr:`~repro.runtime.middleware.Middleware.rank`:

  ==========  ====  =====================================================
  layer       rank  why it sits there
  ==========  ====  =====================================================
  metrics       40  boundary timing must see the full stack cost
  parallel      35  sharding replaces execution below it; metrics above
                    still times the full sharded cost, and a durable
                    layer below declares the journal root the parallel
                    layer partitions per shard (``journal-<shard>/``)
  durable       30  the WAL must record rejected steps as aborts, so it
                    sits *above* validation/fallback
  resilient     20  validation must run before the engine mutates state
  engine         0  the bottom (``IncrementalProgram`` or
                    ``CachingIncrementalProgram`` -- caching is an
                    engine variant, composable with every layer)
  ==========  ====  =====================================================

Any *subset* of the canonical order is accepted (``["metrics",
"resilient"]``, ``["durable"]``, ...); any permutation that inverts a
rank is rejected with :class:`~repro.runtime.middleware.StackError`
explaining the required order.  The property test in
``tests/runtime/test_stack_property.py`` pins the contract that every
*accepted* order is semantically transparent: step-for-step identical
outputs to the bare engine under no faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from importlib import import_module
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.runtime.middleware import StackError, iter_layers

#: layer name -> (module, class) -- resolved lazily so importing the
#: stack assembler does not drag in persistence (and its recovery
#: machinery) until a durable layer is actually requested.
LAYER_REGISTRY: Dict[str, Tuple[str, str]] = {
    "metrics": ("repro.runtime.telemetry", "MetricsLayer"),
    "parallel": ("repro.runtime.parallelism", "ParallelLayer"),
    "durable": ("repro.runtime.durability", "DurabilityLayer"),
    "resilient": ("repro.runtime.resilience", "ResilienceLayer"),
}

SpecEntry = Union[str, Tuple[str, Dict[str, Any]], Dict[str, Any], "LayerSpec"]


@dataclass
class LayerSpec:
    """One normalized layer of a stack spec."""

    name: str
    options: Dict[str, Any] = field(default_factory=dict)


def layer_class(name: str) -> type:
    """Resolve a registered layer name to its middleware class."""
    try:
        module_name, attr = LAYER_REGISTRY[name]
    except KeyError:
        raise StackError(
            f"unknown middleware layer {name!r} "
            f"(available: {', '.join(sorted(LAYER_REGISTRY))})"
        ) from None
    return getattr(import_module(module_name), attr)


def _normalize_entry(entry: SpecEntry) -> LayerSpec:
    if isinstance(entry, LayerSpec):
        return LayerSpec(entry.name, dict(entry.options))
    if isinstance(entry, str):
        return LayerSpec(entry)
    if isinstance(entry, dict):
        options = dict(entry)
        name = options.pop("layer", None)
        if not isinstance(name, str):
            raise StackError(
                f"dict spec entries need a 'layer' name, got {entry!r}"
            )
        return LayerSpec(name, options)
    if isinstance(entry, (tuple, list)) and len(entry) == 2:
        name, options = entry
        if isinstance(name, str) and isinstance(options, dict):
            return LayerSpec(name, dict(options))
    raise StackError(
        f"cannot interpret spec entry {entry!r}; expected a layer name, "
        "a (name, options) pair, or a {'layer': name, ...} dict"
    )


def validate_spec(spec: Sequence[SpecEntry]) -> List[LayerSpec]:
    """Normalize ``spec`` (outermost-first) and enforce the stacking
    discipline; returns the normalized layer list or raises
    :class:`StackError`."""
    layers = [_normalize_entry(entry) for entry in spec]
    seen: Dict[str, int] = {}
    for layer in layers:
        if layer.name in seen:
            raise StackError(f"layer {layer.name!r} appears twice in the stack")
        seen[layer.name] = layer_class(layer.name).rank
    for outer, inner in zip(layers, layers[1:]):
        if seen[outer.name] <= seen[inner.name]:
            canonical = sorted(seen, key=lambda name: -seen[name])
            raise StackError(
                f"layer {outer.name!r} (rank {seen[outer.name]}) cannot wrap "
                f"{inner.name!r} (rank {seen[inner.name]}); canonical "
                f"outermost-first order here is {canonical}"
            )
    return layers


def build_stack(
    engine: Any,
    spec: Sequence[SpecEntry],
    **default_options: Dict[str, Any],
) -> Any:
    """Assemble a validated middleware stack around ``engine``.

    ``spec`` lists layers outermost-first.  Per-layer options come from
    the spec entries themselves, with ``**default_options`` supplying a
    fallback dict per layer name (``build_stack(e, ["durable"],
    durable={"directory": d})``).
    """
    layers = validate_spec(spec)
    program = engine
    for layer in reversed(layers):
        options = dict(default_options.get(layer.name) or {})
        options.update(layer.options)
        cls = layer_class(layer.name)
        try:
            program = cls(program, **options)
        except TypeError as error:
            raise StackError(
                f"cannot construct layer {layer.name!r} "
                f"with options {sorted(options)}: {error}"
            ) from error
    return program


def stack_names(program: Any) -> List[str]:
    """Layer names outermost-first, ending with the engine class name."""
    names: List[str] = []
    for layer in iter_layers(program):
        name = getattr(layer, "layer_name", None)
        names.append(name if name is not None else type(layer).__name__)
    return names


def describe_stack(program: Any) -> Dict[str, Any]:
    """A JSON-ready description of an assembled stack."""
    snapshot = getattr(program, "snapshot_state", None)
    return {
        "layers": stack_names(program),
        "state": snapshot() if snapshot is not None else None,
    }


def assemble_stack(
    term: Any,
    registry: Any,
    spec: Sequence[SpecEntry],
    engine: str = "incremental",
    backend: Optional[str] = None,
    **default_options: Dict[str, Any],
) -> Any:
    """Build an engine *and* its stack from data: the declarative
    entrypoint a view server uses per tenant."""
    from repro.incremental.caching import CachingIncrementalProgram
    from repro.incremental.engine import IncrementalProgram

    engines = {
        "incremental": IncrementalProgram,
        "caching": CachingIncrementalProgram,
    }
    if engine not in engines:
        raise StackError(
            f"unknown engine {engine!r} (available: {', '.join(sorted(engines))})"
        )
    kwargs: Dict[str, Any] = {}
    if backend is not None:
        kwargs["backend"] = backend
    base = engines[engine](term, registry, **kwargs)
    return build_stack(base, spec, **default_options)


__all__ = [
    "LAYER_REGISTRY",
    "LayerSpec",
    "assemble_stack",
    "build_stack",
    "describe_stack",
    "layer_class",
    "stack_names",
    "validate_spec",
]
