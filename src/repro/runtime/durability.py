"""The durability middleware layer: journal every step, checkpoint every N.

:class:`DurabilityLayer` wraps an engine (or a deeper stack slice) and
adds write-ahead durability as an orthogonal guarantee:

* ``initialize`` starts a fresh journal with an ``init`` record carrying
  the program source, engine options, the encoded initial inputs, and
  the base output -- everything recovery needs to rebuild the run from
  nothing -- then writes checkpoint 0;
* ``step`` appends the encoded changes to the journal *before* touching
  the inner program (write-ahead: a crash after the append replays the
  step, a crash during it tears the tail and loses only that step); a
  step the inner stack rejects gets an ``abort`` marker so replay skips
  it;
* every ``snapshot_every`` committed steps a checkpoint is written
  atomically and old ones are pruned down to ``keep_snapshots``.

Because changes are encoded before the journal is touched, a change the
codec cannot represent (e.g. a function change) fails the step *before*
any state -- durable or in-memory -- is modified.

As a middleware, the layer inherits the coalescing ``step_batch``: a
burst whose changes compose is journaled as *one* composed step (one
append + fsync per burst), which is the same replay state by the
monoid law ``a ⊕ (da₁ ∘ da₂) = (a ⊕ da₁) ⊕ da₂``.

``repro.persistence.durable.DurableProgram`` is a thin alias kept for
old imports; the recovery ladder re-attaches through it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.lang.pretty import pretty
from repro.observability import metrics as _metrics
from repro.persistence.codec import CODEC_VERSION, encode_value
from repro.persistence.journal import Journal, journal_path
from repro.persistence.snapshot import write_snapshot
from repro.runtime.middleware import Middleware, engine_of, iter_layers

_STATE = _metrics.STATE
_STEPS_JOURNALED = _metrics.GLOBAL_REGISTRY.counter(
    "persistence.journal.steps_journaled"
)
_ABORTS = _metrics.GLOBAL_REGISTRY.counter("persistence.journal.aborts")


@dataclass
class DurabilityPolicy:
    """Tunable knobs of the durability layer.

    journal_fsync:
        ``"always"`` -- fsync after every journal append (each committed
        step survives power loss); ``"never"`` -- flush without fsync
        (each step survives process death only).
    snapshot_every:
        Write a checkpoint every N committed steps (0 = only the initial
        checkpoint; recovery then replays the whole journal).
    keep_snapshots:
        Prune checkpoints beyond the newest K (minimum 2 once pruning is
        on -- the recovery ladder needs a previous rung to fall back to).
    verify_on_recover:
        After recovery, check the recovered output against from-scratch
        recomputation (Eq. 1 applied to the replayed state) before
        declaring success.
    """

    journal_fsync: str = "always"
    snapshot_every: int = 0
    keep_snapshots: int = 3
    verify_on_recover: bool = True

    def __post_init__(self) -> None:
        if self.journal_fsync not in ("always", "never"):
            raise ValueError(
                f"journal_fsync must be 'always' or 'never', "
                f"got {self.journal_fsync!r}"
            )
        if self.snapshot_every < 0:
            raise ValueError("snapshot_every must be >= 0")
        if self.keep_snapshots < 0:
            raise ValueError("keep_snapshots must be >= 0")


class DurabilityLayer(Middleware):
    """A write-ahead-journaled, checkpointed middleware layer."""

    layer_name = "durable"
    rank = 30

    def __init__(
        self,
        program: Any,
        directory: str,
        policy: Optional[DurabilityPolicy] = None,
        source: Optional[str] = None,
        meta: Optional[Dict[str, Any]] = None,
    ):
        super().__init__(program)
        self.directory = directory
        self.policy = policy or DurabilityPolicy()
        engine = engine_of(program)
        self.source = source if source is not None else pretty(engine.term)
        self.meta = dict(meta) if meta else {}
        self.journal: Optional[Journal] = None

    # -- recovery re-attachment -------------------------------------------

    @classmethod
    def _attach(
        cls,
        program: Any,
        directory: str,
        policy: DurabilityPolicy,
        source: str,
        journal: Journal,
        meta: Optional[Dict[str, Any]] = None,
    ) -> "DurabilityLayer":
        """Wrap an already-recovered program around its existing journal
        (no init record is written; appends continue at the repaired
        tail)."""
        durable = cls.__new__(cls)
        durable.inner = program
        durable.directory = directory
        durable.policy = policy
        durable.source = source
        durable.meta = dict(meta) if meta else {}
        durable.journal = journal
        return durable

    # -- lifecycle ---------------------------------------------------------

    def initialize(self, *inputs: Any) -> Any:
        os.makedirs(self.directory, exist_ok=True)
        encoded_inputs = [encode_value(value) for value in inputs]
        output = self.inner.initialize(*inputs)
        engine = engine_of(self.inner)
        self.journal = Journal.create(
            journal_path(self.directory), fsync=self.policy.journal_fsync
        )
        record: Dict[str, Any] = {
            "type": "init",
            "codec": CODEC_VERSION,
            "program": self.source,
            "options": {
                "caching": type(engine).__name__ == "CachingIncrementalProgram",
                "resilient": any(
                    getattr(layer, "layer_name", None) == "resilient"
                    for layer in iter_layers(self.inner)
                ),
                "strict": bool(getattr(engine, "strict", False)),
                "arity": engine.arity,
            },
            "inputs": encoded_inputs,
            "output": encode_value(output),
        }
        if self.meta:
            record["meta"] = self.meta
        self.journal.append(record)
        self.snapshot()
        return output

    def step(self, *changes: Any) -> Any:
        """A journaled step: write-ahead append, then the transactional
        inner step, then (periodically) a checkpoint."""
        if self.journal is None:
            raise RuntimeError("call initialize() before step()")
        step_index = self.inner.steps
        record = {
            "type": "step",
            "step": step_index,
            "changes": [encode_value(change) for change in changes],
        }
        self.journal.append(record)
        if _STATE.on:
            _STEPS_JOURNALED.inc()
        try:
            output = self.inner.step(*changes)
        except Exception:
            # The engine rolled the step back; mark the journal record
            # dead so replay skips it rather than re-raising mid-recovery.
            self.journal.append({"type": "abort", "step": step_index})
            if _STATE.on:
                _ABORTS.inc()
            raise
        every = self.policy.snapshot_every
        if every and self.inner.steps % every == 0:
            self.snapshot()
        return output

    def rebase(self, *changes: Any) -> Any:
        """A journaled recompute-fallback: ``rebase`` mutates the inputs
        (⊕) exactly like ``step`` does, so it must be written ahead too
        -- otherwise a supervisor's degradation ladder would apply
        changes the journal never saw and recovery would silently lose
        them.  The record replays as an ordinary step: by Eq. 1 the
        derivative path (healthy at replay time) reaches the same state
        ⊕-plus-recompute did live."""
        if self.journal is None:
            raise RuntimeError("call initialize() before rebase()")
        step_index = self.inner.steps
        record = {
            "type": "step",
            "step": step_index,
            "via": "rebase",
            "changes": [encode_value(change) for change in changes],
        }
        self.journal.append(record)
        if _STATE.on:
            _STEPS_JOURNALED.inc()
        try:
            output = self.inner.rebase(*changes)
        except Exception:
            self.journal.append({"type": "abort", "step": step_index})
            if _STATE.on:
                _ABORTS.inc()
            raise
        every = self.policy.snapshot_every
        if every and self.inner.steps % every == 0:
            self.snapshot()
        return output

    def snapshot(self) -> None:
        """Checkpoint the committed state at the current step boundary."""
        if self.journal is None:
            raise RuntimeError("call initialize() before snapshot()")
        state: Dict[str, Any] = {
            "inputs": [
                encode_value(value) for value in self.inner.current_inputs()
            ],
            "output": encode_value(self.inner.output),
        }
        caches = self._encodable_caches()
        if caches is not None:
            state["caches"] = caches
        write_snapshot(
            self.directory,
            state,
            step=self.inner.steps,
            journal_offset=self.journal.offset,
            keep=self.policy.keep_snapshots,
        )

    def _encodable_caches(self) -> Optional[Dict[str, Any]]:
        """First-order intermediate caches of the caching engine, for
        recovery-time cross-validation.  Function-valued caches (partial
        applications named by ANF) are skipped -- they are rebuilt, not
        restored."""
        engine = engine_of(self.inner)
        names = getattr(engine, "cache_names", None)
        if names is None:
            return None
        encoded: Dict[str, Any] = {}
        for name in names():
            try:
                encoded[name] = encode_value(engine.cached_value(name))
            except Exception:
                continue
        return encoded

    def close(self) -> None:
        if self.journal is not None:
            self.journal.close()
        super().close()

    # -- snapshot-state ----------------------------------------------------

    def layer_state(self) -> Any:
        return {
            "directory": self.directory,
            "journal_offset": (
                self.journal.offset if self.journal is not None else None
            ),
            "fsync": self.policy.journal_fsync,
            "snapshot_every": self.policy.snapshot_every,
        }


__all__ = ["DurabilityLayer", "DurabilityPolicy"]
