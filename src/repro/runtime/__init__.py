"""The composable engine runtime: middleware stacks and supervision.

This package collapses the historical wrapper zoo (``ResilientProgram``,
``DurableProgram``, ad-hoc metrics instrumentation) into one
:class:`~repro.runtime.middleware.Middleware` contract with a canonical
stacking order, a declarative assembler
(:func:`~repro.runtime.stack.build_stack`), and a supervised control
loop (:class:`~repro.runtime.supervisor.SupervisedRuntime`) that serves
every change through an explicit degradation ladder guarded by circuit
breakers.  The chaos soak harness (:mod:`repro.runtime.soak`) proves
the full stack under fault storms and SIGKILL cycles.

Durability- and soak-related names are exported lazily (PEP 562):
importing :mod:`repro.runtime` must not drag in the persistence package
(whose recovery module imports back through the engine wrappers).
"""

from __future__ import annotations

from typing import Any

from repro.runtime.breaker import BreakerPolicy, CircuitBreaker
from repro.runtime.middleware import (
    Middleware,
    StackError,
    engine_of,
    iter_layers,
)
from repro.runtime.resilience import ResilienceLayer, ResiliencePolicy
from repro.runtime.stack import (
    LAYER_REGISTRY,
    LayerSpec,
    assemble_stack,
    build_stack,
    describe_stack,
    stack_names,
    validate_spec,
)
from repro.runtime.supervisor import (
    INCREMENTAL,
    RECOMPUTE,
    REJECTED,
    SHED,
    STALE,
    SupervisedRuntime,
    SupervisorPolicy,
)
from repro.runtime.telemetry import MetricsLayer

_LAZY = {
    "DurabilityLayer": ("repro.runtime.durability", "DurabilityLayer"),
    "DurabilityPolicy": ("repro.runtime.durability", "DurabilityPolicy"),
    "SoakConfig": ("repro.runtime.soak", "SoakConfig"),
    "run_soak": ("repro.runtime.soak", "run_soak"),
}


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    from importlib import import_module

    return getattr(import_module(module_name), attr)


__all__ = [
    "BreakerPolicy",
    "CircuitBreaker",
    "INCREMENTAL",
    "RECOMPUTE",
    "REJECTED",
    "SHED",
    "STALE",
    "DurabilityLayer",
    "DurabilityPolicy",
    "LAYER_REGISTRY",
    "LayerSpec",
    "MetricsLayer",
    "Middleware",
    "ResilienceLayer",
    "ResiliencePolicy",
    "SoakConfig",
    "StackError",
    "SupervisedRuntime",
    "SupervisorPolicy",
    "assemble_stack",
    "build_stack",
    "describe_stack",
    "engine_of",
    "iter_layers",
    "run_soak",
    "stack_names",
    "validate_spec",
]
