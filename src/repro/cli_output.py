"""Shared output formatting for the CLI subcommands.

Every subcommand builds one JSON-serializable payload and declares a text
renderer for it; :func:`emit` picks the representation from ``--format``.
This keeps ``repro derive``/``check``/``lint`` byte-identical in text
mode while guaranteeing their JSON mode always reflects the same data
(the payload is the single source of truth for both).
"""

from __future__ import annotations

import json
from typing import Any, Callable, Iterable, List

FORMATS = ("text", "json")


def to_jsonable(value: Any) -> Any:
    """Best-effort conversion for payload leaves (reports, positions…)."""
    if hasattr(value, "to_dict"):
        return to_jsonable(value.to_dict())
    if isinstance(value, dict):
        return {key: to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def emit(
    out,
    payload: dict,
    fmt: str,
    render_text: Callable[[dict], Iterable[str]],
) -> None:
    """Print ``payload`` to ``out`` as pretty JSON or via ``render_text``."""
    if fmt == "json":
        print(
            json.dumps(to_jsonable(payload), indent=2, sort_keys=True),
            file=out,
        )
        return
    for line in render_text(payload):
        print(line, file=out)


def emit_json_lines(out, records: Iterable[Any]) -> int:
    """One compact JSON object per line (the trace/telemetry format)."""
    count = 0
    for record in records:
        print(json.dumps(record, sort_keys=True, default=repr), file=out)
        count += 1
    return count


def render_kv(pairs: List[tuple]) -> List[str]:
    """Aligned ``key: value`` lines, the house style of ``repro derive``."""
    lines = []
    for key, value in pairs:
        lines.append(f"{key + ':':<12}{value}")
    return lines
