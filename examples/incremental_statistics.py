"""Incremental statistics over a stream of measurements.

Averages are not homomorphic -- you cannot merge two averages -- but the
pair (sum, count) lives in the product group Z × Z, so the *sufficient
statistics* fold incrementally and the average is a cheap post-read.
This is the classic trick for making non-homomorphic aggregates
self-maintainable, expressed directly in ILC: ``foldBag`` with the pair
group, derivative specialized and self-maintainable.

Run:  python examples/incremental_statistics.py
"""

import random
import time

from repro import incrementalize, pretty, standard_registry, type_of
from repro.data import BAG_GROUP, Bag, GroupChange
from repro.lang.builders import lam, v
from repro.lang.types import TBag, TInt


def main() -> None:
    registry = standard_registry()
    const = registry.constant

    # sufficient_stats : Bag Int → Pair Int Int  =  (Σx, count)
    sufficient_stats = lam(("measurements", TBag(TInt)))(
        const("foldBag")(
            const("groupOnPairs")(const("gplus"), const("gplus")),
            lam("x")(const("pair")(v.x, 1)),
            v.measurements,
        )
    )
    print("sufficient_stats :", type_of(sufficient_stats))

    program = incrementalize(sufficient_stats, registry)
    print("derivative:", pretty(program.derived_term))

    rng = random.Random(7)
    readings = Bag.from_iterable(rng.randrange(100) for _ in range(50_000))
    total, count = program.initialize(readings)
    print(f"\n{count} readings, mean = {total / count:.3f}")

    # Stream new readings through the derivative.
    start = time.perf_counter()
    for _ in range(100):
        reading = rng.randrange(100)
        total, count = program.step(
            GroupChange(BAG_GROUP, Bag.singleton(reading))
        )
    elapsed = time.perf_counter() - start
    print(
        f"after 100 streamed readings: mean = {total / count:.3f} "
        f"({elapsed / 100 * 1e6:.0f} µs per reading)"
    )

    # Retract an outlier batch (negative multiplicities = deletions).
    outliers = Bag.from_counts([(99, -37)])
    total, count = program.step(GroupChange(BAG_GROUP, outliers))
    print(f"after retracting 37 readings of 99: mean = {total / count:.3f}")

    assert program.verify()
    print("\nverified against recomputation")


if __name__ == "__main__":
    main()
