"""The MapReduce word-count case study (Sec. 4.4, Figs. 5-7).

``histogram : Map Int (Bag Int) → Map Int Int`` maps document ids to bags
of words and produces word counts, built from the Fig. 5 skeleton
(``mapReduce = reducePerKey ∘ groupByKey ∘ mapPerKey``).  Static
differentiation turns it into a pipeline of self-maintainable folds; an
incoming "one word changed in one document" change updates the histogram
in time independent of corpus size.

Run:  python examples/wordcount_mapreduce.py
"""

import time

from repro import incrementalize, pretty, standard_registry, type_of
from repro.analysis import analyze_nil_changes, analyze_self_maintainability
from repro.mapreduce import ChangeScript, histogram_term, make_corpus
from repro.mapreduce.workloads import add_word_change, remove_word_change


def main() -> None:
    registry = standard_registry()
    histogram = histogram_term(registry)
    print("histogram type:", type_of(histogram))

    # What does the static analysis see?
    report = analyze_nil_changes(histogram)
    print("\nnil-change analysis:")
    print(report.summary())

    program = incrementalize(histogram, registry)
    maintainability = analyze_self_maintainability(program.derived_term)
    print("\nderivative:", maintainability.summary())
    print("\nderived program (optimized):")
    print(pretty(program.derived_term))

    # A corpus of 20k word occurrences over a 500-word vocabulary.
    corpus = make_corpus(total_words=20_000, vocabulary_size=500)
    output = program.initialize(corpus.documents)
    print(
        f"\ncorpus: {corpus.document_count} documents, "
        f"{corpus.total_words} words; histogram has {len(output)} entries"
    )
    assert output == corpus.word_histogram()

    # Stream small edits through the derivative.
    print("\nstreaming edits:")
    edits = [
        add_word_change(0, 7),
        add_word_change(3, 7),
        remove_word_change(0, 7),
        add_word_change(5, 123),
    ]
    for edit in edits:
        before = program.output.get(7, 0), program.output.get(123, 0)
        program.step(edit)
        after = program.output.get(7, 0), program.output.get(123, 0)
        print(f"  counts(word 7, word 123): {before} -> {after}")
    assert program.verify(), "incremental output must match recomputation"

    # A longer random change script, then timing.
    script = ChangeScript(corpus, length=100, seed=11)
    changes = list(script)
    start = time.perf_counter()
    for change in changes:
        program.step(change)
    per_step = (time.perf_counter() - start) / len(changes)

    start = time.perf_counter()
    recomputed = program.recompute()
    recompute_time = time.perf_counter() - start
    assert recomputed == program.output

    print(
        f"\nincremental step: {per_step * 1e3:.3f} ms;  "
        f"recomputation: {recompute_time * 1e3:.1f} ms;  "
        f"speedup ≈ {recompute_time / per_step:,.0f}×"
    )
    print("(Fig. 7: the gap grows linearly with corpus size.)")


if __name__ == "__main__":
    main()
