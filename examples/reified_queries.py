"""Reified collection queries as incrementally maintained views.

The paper's motivating application (Sec. 6): the SQUOPT project reifies
collection queries so they can be optimized -- and ILC "enables updating
those indexes when input data changes".  The ``repro.queries`` layer does
exactly that: write a query with combinators, and every combinator
reifies to an object-language primitive whose derivative is
self-maintainable, so the materialized view updates in O(|change|).

Run:  python examples/reified_queries.py
"""

import random
import time

from repro import pretty, standard_registry
from repro.lang.types import TInt, TPair
from repro.queries import Query


def main() -> None:
    registry = standard_registry()
    const = registry.constant
    fst = const("fst")
    snd = const("snd")

    # Orders: (customer_id, amount).
    orders = Query.source("orders", TPair(TInt, TInt), registry)

    # Three views over one table.
    revenue_by_customer = orders.group_sum(
        key=lambda r: fst(r), value=lambda r: snd(r)
    )
    big_order_count = orders.where(
        lambda r: const("leqInt")(1_000, snd(r))
    ).count()
    total_revenue = orders.sum(lambda r: snd(r))

    print("reified revenue query:")
    print(" ", pretty(revenue_by_customer.to_term()))

    # Load a base table.
    rng = random.Random(12)
    base_rows = [
        (rng.randrange(100), rng.choice([10, 50, 99, 1_500, 2_500]))
        for _ in range(40_000)
    ]
    revenue = revenue_by_customer.materialize(base_rows)
    big_orders = big_order_count.materialize(base_rows)
    total = total_revenue.materialize(base_rows)

    print(
        f"\nloaded {len(base_rows)} orders; customer 7 revenue = "
        f"{revenue.value.get(7, 0)}, big orders = {big_orders.value}, "
        f"total = {total.value}"
    )
    print(
        "all three views self-maintainable:",
        revenue.self_maintainable
        and big_orders.self_maintainable
        and total.self_maintainable,
    )

    # Live updates.
    start = time.perf_counter()
    revenue.insert((7, 2_000))
    big_orders.insert((7, 2_000))
    total.insert((7, 2_000))

    revenue.update((7, 2_000), (7, 1_800))  # order amended
    big_orders.update((7, 2_000), (7, 1_800))
    total.update((7, 2_000), (7, 1_800))

    with revenue.batch():  # a returns file arrives as one batch
        for _ in range(5):
            revenue.delete((7, 1_500))
    elapsed = time.perf_counter() - start

    print(
        f"\nafter updates: customer 7 revenue = {revenue.value.get(7, 0)}, "
        f"big orders = {big_orders.value}, total = {total.value}"
    )
    print(f"(all maintenance steps together: {elapsed * 1e3:.2f} ms)")

    assert revenue.verify() and big_orders.verify() and total.verify()
    print("\nall views verified against recomputation")


if __name__ == "__main__":
    main()
