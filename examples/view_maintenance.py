"""Incremental view maintenance over a bag of records.

The paper's motivation includes optimizing collection queries (the SQUOPT
project, Sec. 6): database-style *views* should update when base data
changes, without rescanning.  This example maintains two views over a bag
of ``(product_id, amount)`` sale records:

* ``revenue_by_product : Bag (Pair Int Int) → Map Int Int`` -- a
  group-by-key aggregation (an index);
* ``big_sale_count     : Bag (Pair Int Int) → Int``         -- a filtered
  count.

Both derivatives are self-maintainable: each incoming sale touches only
the affected key.

Run:  python examples/view_maintenance.py
"""

import time

from repro import incrementalize, parse, pretty, standard_registry, type_of
from repro.data import BAG_GROUP, Bag, GroupChange
from repro.lang.builders import lam, v
from repro.lang.types import TBag, TInt, TPair


def sale(product_id: int, amount: int):
    return (product_id, amount)


def main() -> None:
    registry = standard_registry()
    const = registry.constant
    records_type = TBag(TPair(TInt, TInt))

    # View 1: revenue per product, as a map index.
    # foldBag (groupOnMaps gplus) (λr. singletonMap (fst r) (snd r))
    revenue_view = lam(("sales", records_type))(
        const("foldBag")(
            const("groupOnMaps")(const("gplus")),
            lam("record")(
                const("singletonMap")(
                    const("fst")(v.record), const("snd")(v.record)
                )
            ),
            v.sales,
        )
    )
    print("revenue_by_product :", type_of(revenue_view))

    # View 2: how many sales of at least 1000?
    big_sale_view = lam(("sales", records_type))(
        const("foldBag")(
            const("gplus"),
            lam("record")(1),
            const("filterBag")(
                lam("record")(const("leqInt")(1000, const("snd")(v.record))),
                v.sales,
            ),
        )
    )
    print("big_sale_count     :", type_of(big_sale_view))

    revenue = incrementalize(revenue_view, registry)
    big_sales = incrementalize(big_sale_view, registry)
    print("\nderived revenue view:", pretty(revenue.derived_term))

    # Base data: 30k sales over 200 products.
    import random

    rng = random.Random(3)
    base = Bag.from_iterable(
        sale(rng.randrange(200), rng.choice([5, 20, 100, 1500]))
        for _ in range(30_000)
    )
    revenue_index = revenue.initialize(base)
    big_count = big_sales.initialize(base)
    print(
        f"\n{base.total_size()} sales; product 7 revenue = "
        f"{revenue_index.get(7, 0)}; big sales = {big_count}"
    )

    # New sales stream in as bag changes.
    new_sales = [sale(7, 2500), sale(7, 10), sale(42, 1200)]
    start = time.perf_counter()
    for record in new_sales:
        change = GroupChange(BAG_GROUP, Bag.singleton(record))
        revenue_index = revenue.step(change)
        big_count = big_sales.step(change)
    elapsed = time.perf_counter() - start
    print(
        f"after 3 new sales: product 7 revenue = {revenue_index.get(7, 0)}, "
        f"big sales = {big_count}  ({elapsed * 1e3:.2f} ms total)"
    )

    # A return: remove a sale (negative multiplicity).
    refund = GroupChange(BAG_GROUP, Bag.singleton(sale(7, 2500)).negate())
    revenue_index = revenue.step(refund)
    big_count = big_sales.step(refund)
    print(
        f"after refunding the 2500 sale: product 7 revenue = "
        f"{revenue_index.get(7, 0)}, big sales = {big_count}"
    )

    assert revenue.verify() and big_sales.verify()
    print("\nboth views verified against full recomputation")


if __name__ == "__main__":
    main()
