"""A tour of the theory of changes (Sec. 2), executed.

Demonstrates, on concrete values:

* change structures and their laws (naturals, integers, bags);
* function changes and the incrementalization theorem (Thm. 2.9);
* "nil changes are derivatives" (Thm. 2.10);
* the derivative of ``app = λf x. f x`` from Sec. 2.2:
  incrementalizing ``app`` gives ``λf df x dx. df x dx``;
* the change semantics ⟦t⟧Δ agreeing with the derived program.

Run:  python examples/higher_order_changes.py
"""

from repro import derive_program, evaluate, parse, pretty, standard_registry
from repro.changes import (
    BAG_CHANGES,
    FunctionChangeStructure,
    INT_CHANGES,
    NAT_CHANGES,
    check_change_structure_laws,
    check_incrementalization,
    check_nil_is_derivative,
)
from repro.data import Bag, GroupChange, INT_ADD_GROUP
from repro.semantics.change_eval import semantic_derivative_of_term
from repro.semantics.denotation import apply_semantic
from repro.semantics.eval import apply_value


def main() -> None:
    registry = standard_registry()

    # -- change structures (Def. 2.1) --------------------------------------
    print("N̂: naturals, where Δv = {dv | v + dv ≥ 0} depends on v")
    print("   5 ⊖ 2 =", NAT_CHANGES.ominus(5, 2), " 2 ⊕ 3 =", NAT_CHANGES.oplus(2, 3))
    check_change_structure_laws(NAT_CHANGES, 5, 2)
    print("   Δ2 contains -2:", NAT_CHANGES.delta_contains(2, -2))
    print("   Δ2 contains -3:", NAT_CHANGES.delta_contains(2, -3), "(would go negative)")

    print("\nB̂ag: every bag is a change to every bag (Sec. 2.1)")
    old = Bag.of(1, 2)
    change = Bag.from_counts([(1, 2), (5, -1)])  # insert two 1s, delete a 5
    print(f"   {old!r} ⊕ {change!r} = {BAG_CHANGES.oplus(old, change)!r}")
    check_change_structure_laws(BAG_CHANGES, Bag.of(9, 9), old)

    # -- function changes (Sec. 2.2) ------------------------------------------
    int_to_int = FunctionChangeStructure(
        INT_CHANGES, INT_CHANGES, samples=[(0, 1), (10, -3), (7, 7)]
    )

    def triple(x: int) -> int:
        return 3 * x

    # A function change: df a da accounts for both the function changing
    # (to λx. 3x + 100) and the argument changing.
    def triple_change(a: int, da: int) -> int:
        return 3 * da + 100

    df = lambda a: lambda da: triple_change(a, da)  # curried, as in ⟦·⟧Δ
    check_incrementalization(
        int_to_int, triple, lambda a, da: triple_change(a, da), 5, 2
    )
    updated = int_to_int.oplus(triple, lambda a, da: triple_change(a, da))
    print("\nThm 2.9: (f ⊕ df)(5 ⊕ 2) =", updated(7), "= f 5 ⊕ df 5 2 =",
          triple(5) + triple_change(5, 2))

    # -- nil changes are derivatives (Thm. 2.10) ---------------------------------
    check_nil_is_derivative(int_to_int, triple, 5, 2)
    nil = int_to_int.nil(triple)
    print("Thm 2.10: 0_triple 5 2 =", nil(5, 2), "= triple(7) - triple(5)")

    # -- the app example (Sec. 2.2) ------------------------------------------------
    app = parse(r"\f x -> f x", registry)
    derived_app = derive_program(app, registry)
    print("\nDerive(app) =", pretty(derived_app))

    # Runtime: feed a function, a function change, a base and a change.
    succ = evaluate(parse(r"\x -> add x 1", registry))
    # A nil function change for succ: df x dx = dx (its derivative,
    # by Thm. 2.10 -- succ is linear, so its derivative is the identity
    # on changes).
    dsucc = evaluate(parse(r"\x dx -> dx", registry))
    result_change = apply_value(
        evaluate(derived_app), succ, dsucc, 41, GroupChange(INT_ADD_GROUP, 1)
    )
    print("Derive(app) succ 0_succ 41 (+1) =", result_change)

    # Change semantics ⟦app⟧Δ (Fig. 4h) agrees.
    semantic = semantic_derivative_of_term(app)
    semantic_result = apply_semantic(
        semantic, lambda x: x + 1, lambda a: lambda da: da, 41, 1
    )
    print("⟦app⟧Δ  succ 0_succ 41 (+1) =", semantic_result)


if __name__ == "__main__":
    main()
