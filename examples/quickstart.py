"""Quickstart: incrementalizing ``grand_total`` (Sec. 1 of the paper).

    grand_total = λxs ys. fold (+) 0 (merge xs ys)
    output      = grand_total {{1, 1}} {{2, 3, 4}} = 11

When xs loses a 1 and ys gains a 5, the derivative computes the output
change (+4) from the input changes alone -- in time proportional to the
size of the *changes*, not the inputs.

Run:  python examples/quickstart.py
"""

from repro import (
    check_derive_correctness,
    derive_program,
    incrementalize,
    parse,
    pretty,
    standard_registry,
    type_of,
)
from repro.data import BAG_GROUP, Bag, GroupChange


def main() -> None:
    registry = standard_registry()

    # The program, in the object language's surface syntax.  ``foldBag
    # gplus id`` sums a bag of integers (Sec. 4.4 rewrites grand_total
    # this way to get a self-maintainable derivative).
    grand_total = parse(r"\xs ys -> foldBag gplus id (merge xs ys)", registry)
    print("program:       ", pretty(grand_total))
    print("type:          ", type_of(grand_total))

    # Static differentiation (Fig. 4g + the Sec. 4.2 specialization).
    derivative = derive_program(grand_total, registry)
    print("derivative:    ", pretty(derivative))

    # Run it incrementally.
    xs = Bag.of(1, 1)
    ys = Bag.of(2, 3, 4)
    program = incrementalize(grand_total, registry)
    output = program.initialize(xs, ys)
    print(f"\ngrand_total {xs!r} {ys!r} = {output}")

    # The paper's changes: dxs removes a 1, dys inserts a 5.
    dxs = GroupChange(BAG_GROUP, Bag.of(1).negate())
    dys = GroupChange(BAG_GROUP, Bag.of(5))
    merges_before_step = program.stats.calls("merge")
    updated = program.step(dxs, dys)
    print(f"after dxs = remove 1, dys = add 5:  output = {updated}")
    assert updated == 15

    # Eq. (1): f (a ⊕ da) = f a ⊕ f' a da, checked both ways.
    check_derive_correctness(grand_total, registry, [xs, ys], [dxs, dys])
    print("\nEq. (1) verified: incremental result matches recomputation.")

    # The derivative never touched the base bags: the update examined
    # only the two small change bags.
    print(
        "merge calls during the step:",
        program.stats.calls("merge") - merges_before_step,
        "(self-maintainable: the base bags were never re-merged)",
    )


if __name__ == "__main__":
    main()
